"""Exact time-dependent unreliability for maintenance-free fault trees.

For a static fault tree whose basic events fail independently, the
system unreliability at time ``t`` is the structure function's
probability under the per-event failure probabilities ``p_i(t)``.  This
module evaluates it exactly via the BDD, and also via cut-set based
approximations (inclusion-exclusion, rare-event, min-cut upper bound)
that are standard in the fault-tree literature and are used in the test
suite to cross-validate the BDD and the simulator.
"""

from __future__ import annotations

import math
from itertools import combinations
from typing import Dict, Tuple

from scipy import integrate

from repro.analysis.bdd import build_bdd
from repro.analysis.cutsets import minimal_cut_sets
from repro.core.tree import FaultMaintenanceTree
from repro.errors import AnalysisError, UnsupportedModelError

__all__ = [
    "basic_event_probabilities",
    "unreliability",
    "unreliability_bounds",
    "mean_time_to_failure",
]

_METHODS = ("bdd", "inclusion-exclusion", "rare-event")


def _check_static(tree: FaultMaintenanceTree, ignore_maintenance: bool,
                  ignore_dependencies: bool) -> None:
    if tree.dependencies and not ignore_dependencies:
        raise UnsupportedModelError(
            "tree has rate dependencies (RDEP); basic events are not "
            "independent, so static quantification is not exact. Pass "
            "ignore_dependencies=True to quantify the structure anyway, "
            "or use the simulator."
        )
    if (tree.inspections or tree.repairs) and not ignore_maintenance:
        raise UnsupportedModelError(
            "tree has maintenance modules; static unreliability ignores "
            "them. Pass ignore_maintenance=True to compute the "
            "unmaintained unreliability, or use the simulator."
        )


def basic_event_probabilities(
    tree: FaultMaintenanceTree, t: float
) -> Dict[str, float]:
    """Failure probability of every basic event at time ``t`` from new."""
    if t < 0.0:
        raise AnalysisError(f"time must be non-negative, got {t}")
    return {
        name: event.lifetime_cdf(t) for name, event in tree.basic_events.items()
    }


def unreliability(
    tree: FaultMaintenanceTree,
    t: float,
    method: str = "bdd",
    ignore_maintenance: bool = False,
    ignore_dependencies: bool = False,
    treat_pand_as_and: bool = False,
) -> float:
    """System unreliability P(top event by time ``t``), maintenance-free.

    Parameters
    ----------
    tree:
        The fault tree; must be free of RDEP and maintenance (or the
        corresponding ``ignore_*`` flag must be set).
    t:
        Mission time in years.
    method:
        ``"bdd"`` (exact), ``"inclusion-exclusion"`` (exact, exponential
        in the number of cut sets — capped), or ``"rare-event"`` (the
        sum-of-cut-set-probabilities upper bound).
    """
    _check_static(tree, ignore_maintenance, ignore_dependencies)
    probabilities = basic_event_probabilities(tree, t)
    return _quantify(tree, probabilities, method, treat_pand_as_and)


def _quantify(
    tree: FaultMaintenanceTree,
    probabilities: Dict[str, float],
    method: str,
    treat_pand_as_and: bool = False,
) -> float:
    if method == "bdd":
        bdd, root = build_bdd(tree, treat_pand_as_and=treat_pand_as_and)
        return bdd.probability(root, probabilities)
    if method == "inclusion-exclusion":
        cut_sets = minimal_cut_sets(tree, treat_pand_as_and=treat_pand_as_and)
        if len(cut_sets) > 20:
            raise UnsupportedModelError(
                f"inclusion-exclusion over {len(cut_sets)} cut sets needs "
                f"2^{len(cut_sets)} terms; use method='bdd'"
            )
        total = 0.0
        for size in range(1, len(cut_sets) + 1):
            sign = 1.0 if size % 2 == 1 else -1.0
            for combo in combinations(cut_sets, size):
                union = frozenset().union(*combo)
                term = 1.0
                for name in union:
                    term *= probabilities[name]
                total += sign * term
        return min(1.0, max(0.0, total))
    if method == "rare-event":
        cut_sets = minimal_cut_sets(tree, treat_pand_as_and=treat_pand_as_and)
        total = 0.0
        for cut in cut_sets:
            term = 1.0
            for name in cut:
                term *= probabilities[name]
            total += term
        return min(1.0, total)
    raise AnalysisError(f"unknown method {method!r}; expected one of {_METHODS}")


def unreliability_bounds(
    tree: FaultMaintenanceTree,
    t: float,
    ignore_maintenance: bool = False,
    ignore_dependencies: bool = False,
) -> Tuple[float, float]:
    """(lower, upper) bounds on the unreliability from minimal cut sets.

    The lower bound is the probability of the likeliest single cut set;
    the upper bound is the min-cut (Esary–Proschan) bound
    ``1 - prod_C (1 - P(C))``, which dominates the exact value for
    coherent trees with independent events.
    """
    _check_static(tree, ignore_maintenance, ignore_dependencies)
    probabilities = basic_event_probabilities(tree, t)
    cut_sets = minimal_cut_sets(tree)
    best = 0.0
    log_complement = 0.0
    for cut in cut_sets:
        term = 1.0
        for name in cut:
            term *= probabilities[name]
        best = max(best, term)
        if term >= 1.0:
            return 1.0, 1.0
        log_complement += math.log1p(-term)
    upper = -math.expm1(log_complement)
    return best, min(1.0, upper)


def mean_time_to_failure(
    tree: FaultMaintenanceTree,
    ignore_maintenance: bool = False,
    ignore_dependencies: bool = False,
    treat_pand_as_and: bool = False,
) -> float:
    """MTTF of the unmaintained system: the integral of the reliability.

    Computed by numeric quadrature of ``1 - unreliability(t)`` over
    ``[0, inf)`` on the compiled BDD.
    """
    _check_static(tree, ignore_maintenance, ignore_dependencies)
    bdd, root = build_bdd(tree, treat_pand_as_and=treat_pand_as_and)
    events = tree.basic_events

    def survival(t: float) -> float:
        probabilities = {
            name: event.lifetime_cdf(t) for name, event in events.items()
        }
        return 1.0 - bdd.probability(root, probabilities)

    # Truncate the infinite integral where the survival mass is gone:
    # grow the horizon until the tail contribution is negligible.
    scale = max(event.mean_lifetime() for event in events.values())
    upper = 10.0 * scale
    while survival(upper) > 1e-10 and upper < 1e6 * scale:
        upper *= 2.0
    value, _ = integrate.quad(
        survival, 0.0, upper, points=[scale, 3.0 * scale], limit=200
    )
    return value
