"""Minimal cut sets and path sets of static fault trees.

A *cut set* is a set of basic events whose joint failure fails the
system; it is *minimal* when no proper subset is a cut set.  Cut sets
are the classical qualitative fault-tree analysis: they enumerate the
distinct ways the system can fail, and they feed the
inclusion-exclusion and bounding quantifications in
:mod:`repro.analysis.unreliability`.

The computation expands the tree bottom-up over a sets-of-sets algebra
(OR = union, AND = pairwise-union product) with on-the-fly
minimization, memoized per element so shared subtrees are expanded
once.
"""

from __future__ import annotations

from itertools import combinations
from typing import Dict, FrozenSet, List, Set

from repro.core.events import BasicEvent
from repro.core.gates import (
    AndGate,
    Gate,
    InhibitGate,
    OrGate,
    PandGate,
    VotingGate,
)
from repro.core.nodes import Element
from repro.core.tree import FaultMaintenanceTree
from repro.errors import UnsupportedModelError

__all__ = ["minimal_cut_sets", "minimal_path_sets"]

CutSet = FrozenSet[str]


def minimal_cut_sets(
    tree: FaultMaintenanceTree,
    treat_pand_as_and: bool = False,
    max_cut_sets: int = 100_000,
) -> List[CutSet]:
    """Minimal cut sets of ``tree``, sorted by (size, names).

    Parameters
    ----------
    tree:
        The fault tree.  Maintenance modules and rate dependencies do
        not affect the *structure function* and are ignored here.
    treat_pand_as_and:
        Priority-AND gates are order-sensitive and have no cut-set
        semantics; with this flag they are over-approximated as AND
        (the resulting sets over-estimate failure).  Without it a tree
        containing PAND raises :class:`UnsupportedModelError`.
    max_cut_sets:
        Safety valve against combinatorial blow-up; exceeded size
        raises :class:`UnsupportedModelError`.
    """
    if tree.has_dynamic_gates and not treat_pand_as_and:
        raise UnsupportedModelError(
            "tree contains PAND gates; pass treat_pand_as_and=True for an "
            "over-approximation or use the simulator for exact results"
        )

    cache: Dict[str, List[CutSet]] = {}

    def _expand(node: Element) -> List[CutSet]:
        hit = cache.get(node.name)
        if hit is not None:
            return hit
        if isinstance(node, BasicEvent):
            result: List[CutSet] = [frozenset([node.name])]
        else:
            assert isinstance(node, Gate)
            child_sets = [_expand(child) for child in node.children]
            result = _combine(node, child_sets, max_cut_sets)
        cache[node.name] = result
        return result

    sets = _expand(tree.top)
    return sorted(sets, key=lambda s: (len(s), tuple(sorted(s))))


def minimal_path_sets(
    tree: FaultMaintenanceTree,
    treat_pand_as_and: bool = False,
    max_cut_sets: int = 100_000,
) -> List[CutSet]:
    """Minimal path sets: sets of events whose joint *working* keeps the
    system up.  Computed as the cut sets of the dual structure function
    (AND and OR swapped, VOT(k/N) dualised to VOT(N-k+1/N))."""
    if tree.has_dynamic_gates and not treat_pand_as_and:
        raise UnsupportedModelError(
            "tree contains PAND gates; pass treat_pand_as_and=True for an "
            "approximation or use the simulator for exact results"
        )

    cache: Dict[str, List[CutSet]] = {}

    def _expand(node: Element) -> List[CutSet]:
        hit = cache.get(node.name)
        if hit is not None:
            return hit
        if isinstance(node, BasicEvent):
            result: List[CutSet] = [frozenset([node.name])]
        else:
            assert isinstance(node, Gate)
            child_sets = [_expand(child) for child in node.children]
            result = _combine_dual(node, child_sets, max_cut_sets)
        cache[node.name] = result
        return result

    sets = _expand(tree.top)
    return sorted(sets, key=lambda s: (len(s), tuple(sorted(s))))


# ----------------------------------------------------------------------
# Sets-of-sets algebra
# ----------------------------------------------------------------------
def _union(collections: List[List[CutSet]], limit: int) -> List[CutSet]:
    merged: Set[CutSet] = set()
    for collection in collections:
        merged.update(collection)
    return _minimize(merged, limit)


def _product(collections: List[List[CutSet]], limit: int) -> List[CutSet]:
    result: Set[CutSet] = {frozenset()}
    for collection in collections:
        next_result: Set[CutSet] = set()
        for left in result:
            for right in collection:
                next_result.add(left | right)
                if len(next_result) > limit:
                    raise UnsupportedModelError(
                        f"cut-set expansion exceeded {limit} intermediate sets"
                    )
        result = set(_minimize(next_result, limit))
    return _minimize(result, limit)


def _voting(
    k: int, collections: List[List[CutSet]], limit: int
) -> List[CutSet]:
    candidates: List[List[CutSet]] = []
    for combo in combinations(range(len(collections)), k):
        candidates.append(_product([collections[i] for i in combo], limit))
    return _union(candidates, limit)


def _combine(gate: Gate, child_sets: List[List[CutSet]], limit: int) -> List[CutSet]:
    if isinstance(gate, OrGate):
        return _union(child_sets, limit)
    if isinstance(gate, (AndGate, InhibitGate, PandGate)):
        return _product(child_sets, limit)
    if isinstance(gate, VotingGate):
        return _voting(gate.k, child_sets, limit)
    raise UnsupportedModelError(f"no cut-set rule for gate {type(gate).__name__}")


def _combine_dual(
    gate: Gate, child_sets: List[List[CutSet]], limit: int
) -> List[CutSet]:
    if isinstance(gate, OrGate):
        return _product(child_sets, limit)
    if isinstance(gate, (AndGate, InhibitGate, PandGate)):
        return _union(child_sets, limit)
    if isinstance(gate, VotingGate):
        dual_k = len(gate.children) - gate.k + 1
        return _voting(dual_k, child_sets, limit)
    raise UnsupportedModelError(f"no path-set rule for gate {type(gate).__name__}")


def _minimize(sets: Set[CutSet], limit: int) -> List[CutSet]:
    """Drop all supersets, keeping only minimal sets."""
    if len(sets) > limit:
        raise UnsupportedModelError(
            f"cut-set expansion exceeded {limit} intermediate sets"
        )
    by_size = sorted(sets, key=len)
    minimal: List[CutSet] = []
    for candidate in by_size:
        if not any(kept <= candidate for kept in minimal):
            minimal.append(candidate)
    return minimal
