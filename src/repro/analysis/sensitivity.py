"""Parameter sensitivity analysis of simulation KPIs.

The paper stresses that "the faithfulness of quantitative analyses
heavily depend on the accuracy of the parameter values".  This module
quantifies that dependence: it perturbs one model parameter at a time
(a failure mode's mean lifetime, an RDEP factor, the cost of failure)
and measures the induced change in a KPI — producing the data for a
classical tornado diagram.

The perturbation runs under common random numbers (a shared seed), so
KPI *differences* are estimated far more precisely than the KPI levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.tree import FaultMaintenanceTree
from repro.errors import ValidationError
from repro.maintenance.costs import CostModel
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.montecarlo import MonteCarloResult

__all__ = ["SensitivityEntry", "tornado", "kpi_enf", "kpi_cost", "kpi_unreliability"]


@dataclass(frozen=True)
class SensitivityEntry:
    """Effect of one parameter's perturbation on a KPI."""

    parameter: str
    baseline: float
    low_value: float
    high_value: float

    @property
    def swing(self) -> float:
        """Absolute KPI swing between the low and high perturbation."""
        return abs(self.high_value - self.low_value)

    @property
    def relative_swing(self) -> float:
        """Swing relative to the baseline KPI (``inf`` for baseline 0)."""
        if self.baseline == 0.0:
            return float("inf")
        return self.swing / abs(self.baseline)


def kpi_enf(result: MonteCarloResult) -> float:
    """KPI extractor: expected failures per year."""
    return result.failures_per_year.estimate


def kpi_cost(result: MonteCarloResult) -> float:
    """KPI extractor: expected cost per year."""
    return result.cost_per_year.estimate


def kpi_unreliability(result: MonteCarloResult) -> float:
    """KPI extractor: probability of failure within the horizon."""
    return result.unreliability.estimate


def tornado(
    model_factory: Callable[[str, float], FaultMaintenanceTree],
    parameters: Sequence[str],
    strategy: MaintenanceStrategy,
    kpi: Callable[[MonteCarloResult], float] = kpi_enf,
    factor: float = 1.5,
    cost_model: Optional[CostModel] = None,
    horizon: float = 50.0,
    n_runs: int = 1000,
    seed: int = 0,
) -> List[SensitivityEntry]:
    """One-at-a-time sensitivity of a KPI to model parameters.

    Parameters
    ----------
    model_factory:
        ``(parameter_name, multiplier) -> tree``.  Called with
        multiplier 1.0 for the baseline and ``1/factor`` / ``factor``
        for the perturbations; the factory decides what the multiplier
        scales (typically the named mode's mean lifetime).
    parameters:
        Parameter names to perturb, one at a time.
    factor:
        Multiplicative perturbation (> 1), applied both ways.

    Returns
    -------
    list of :class:`SensitivityEntry`, sorted by descending swing.
    """
    from repro.studies import StudyRequest, get_runner

    if factor <= 1.0:
        raise ValidationError(f"factor must be > 1, got {factor}")
    if not parameters:
        raise ValidationError("no parameters to perturb")

    runner = get_runner()

    def evaluate(name: str, multiplier: float) -> float:
        tree = model_factory(name, multiplier)
        result = runner.result(
            StudyRequest(
                tree=tree,
                strategy=strategy,
                horizon=horizon,
                cost_model=cost_model,
                seed=seed,
                n_runs=n_runs,
            )
        )
        return kpi(result)

    baseline = evaluate(parameters[0], 1.0)
    entries = []
    for name in parameters:
        entries.append(
            SensitivityEntry(
                parameter=name,
                baseline=baseline,
                low_value=evaluate(name, 1.0 / factor),
                high_value=evaluate(name, factor),
            )
        )
    return sorted(entries, key=lambda entry: entry.swing, reverse=True)
