"""Modular decomposition of fault trees.

A *module* is an element whose descendants are reachable **only**
through it: the subtree can be analysed in isolation and its result
substituted as a single pseudo-event — the classical divide-and-conquer
of fault-tree analysis, and a prerequisite for scaling exact
quantification to large industrial trees.

:func:`find_modules` returns all module roots; :func:`modular_unreliability`
demonstrates the payoff by quantifying a static tree module-by-module
(each module's probability computed on its own small BDD and folded
into its parent as an independent pseudo-event).
"""

from __future__ import annotations

from typing import Dict, List, Set

from repro.analysis.bdd import build_bdd
from repro.core.events import BasicEvent
from repro.core.gates import Gate
from repro.core.nodes import Element
from repro.core.tree import FaultMaintenanceTree
from repro.errors import UnsupportedModelError

__all__ = ["find_modules", "modular_unreliability"]


def find_modules(tree: FaultMaintenanceTree) -> List[str]:
    """Names of all gates that are modules of ``tree``.

    A gate is a module when every element below it has all its parents
    inside the gate's subtree (equivalently: no element below it is
    shared with the outside).  The top element is always a module.
    RDEP arcs count as sharing: a dependency crossing the subtree
    boundary destroys independence, so such gates are excluded.
    """
    modules: List[str] = []
    for gate_name in tree.gates:
        below = tree.descendants_of(gate_name)
        inside = below | {gate_name}
        independent = True
        for name in below:
            if not set(tree.parents_of(name)) <= inside:
                independent = False
                break
        if independent and not _rdep_crosses(tree, inside):
            modules.append(gate_name)
    return sorted(modules)


def _rdep_crosses(tree: FaultMaintenanceTree, inside: Set[str]) -> bool:
    for dep in tree.dependencies:
        trigger_in = dep.trigger in inside
        for target in dep.targets:
            if (target in inside) != trigger_in:
                return True
    return False


def modular_unreliability(
    tree: FaultMaintenanceTree,
    t: float,
    ignore_maintenance: bool = False,
) -> float:
    """Exact unreliability computed module-by-module.

    Produces the same value as a monolithic BDD (the test suite checks
    this), but each BDD only spans one module's variables.  Requires a
    static tree: no dynamic gates, no rate dependencies.
    """
    if tree.dependencies:
        raise UnsupportedModelError(
            "rate dependencies break module independence; "
            "strip them or use the simulator"
        )
    if tree.has_dynamic_gates:
        raise UnsupportedModelError("PAND gates are not supported")
    if (tree.inspections or tree.repairs) and not ignore_maintenance:
        raise UnsupportedModelError(
            "tree has maintenance modules; pass ignore_maintenance=True "
            "for the unmaintained unreliability"
        )

    modules = set(find_modules(tree))
    probabilities: Dict[str, float] = {
        name: event.lifetime_cdf(t)
        for name, event in tree.basic_events.items()
    }

    def _quantify(root: Element) -> float:
        """Probability of ``root`` failing, treating failed sub-modules
        as independent pseudo-events."""
        local_probabilities = dict(probabilities)
        # Any strict sub-module of root becomes a pseudo-variable.
        pseudo: Dict[str, float] = {}

        def _collect(node: Element, at_root: bool) -> Element:
            if not isinstance(node, Gate):
                return node
            if not at_root and node.name in modules:
                if node.name not in pseudo:
                    pseudo[node.name] = _quantify(node)
                return BasicEvent.exponential(node.name, rate=1.0)
            rebuilt = [_collect(child, False) for child in node.children]
            return _rebuild_gate(node, rebuilt)

        reduced_root = _collect(root, True)
        local_probabilities.update(pseudo)
        reduced = FaultMaintenanceTree(reduced_root, name="module")
        bdd, bdd_root = build_bdd(reduced)
        needed = {
            name: local_probabilities[name] for name in reduced.basic_events
        }
        return bdd.probability(bdd_root, needed)

    return _quantify(tree.top)


def _rebuild_gate(gate: Gate, children: List[Element]) -> Gate:
    from repro.core.gates import (
        AndGate,
        InhibitGate,
        OrGate,
        VotingGate,
    )

    if isinstance(gate, OrGate):
        return OrGate(gate.name, children)
    if isinstance(gate, VotingGate):
        return VotingGate(gate.name, gate.k, children)
    if isinstance(gate, InhibitGate):
        return InhibitGate(gate.name, children)
    if isinstance(gate, AndGate):
        return AndGate(gate.name, children)
    raise UnsupportedModelError(  # pragma: no cover - defensive
        f"cannot rebuild gate type {type(gate).__name__}"
    )
