"""Exact analyses for static fault trees (the maintenance-free fragment).

Classical fault-tree analysis complements the Monte Carlo engine:

* :mod:`repro.analysis.cutsets` — minimal cut sets (qualitative
  analysis);
* :mod:`repro.analysis.bdd` — reduced ordered binary decision diagrams
  of the structure function, and exact top-event probability;
* :mod:`repro.analysis.unreliability` — time-dependent system
  unreliability and MTTF for trees without maintenance;
* :mod:`repro.analysis.importance` — Birnbaum, Fussell-Vesely, RAW and
  RRW importance measures.

These analyses require statistical independence of the basic events, so
they reject trees with rate dependencies unless explicitly told to
ignore them, and they reject dynamic (PAND) gates unless an
over-approximation is requested.  The full FMT formalism — maintenance,
RDEP — is handled by :mod:`repro.simulation` (and cross-checked by
:mod:`repro.ctmc` on Markovian submodels).
"""

from repro.analysis.bdd import BDD, build_bdd
from repro.analysis.common_cause import apply_beta_factor
from repro.analysis.cutsets import minimal_cut_sets, minimal_path_sets
from repro.analysis.importance import (
    ImportanceMeasures,
    birnbaum_importance,
    importance_table,
)
from repro.analysis.modularization import find_modules, modular_unreliability
from repro.analysis.periodic import PeriodicInspectionModel
from repro.analysis.sensitivity import (
    SensitivityEntry,
    kpi_cost,
    kpi_enf,
    kpi_unreliability,
    tornado,
)
from repro.analysis.unreliability import (
    basic_event_probabilities,
    mean_time_to_failure,
    unreliability,
    unreliability_bounds,
)

__all__ = [
    "BDD",
    "ImportanceMeasures",
    "PeriodicInspectionModel",
    "SensitivityEntry",
    "apply_beta_factor",
    "basic_event_probabilities",
    "birnbaum_importance",
    "build_bdd",
    "find_modules",
    "importance_table",
    "kpi_cost",
    "kpi_enf",
    "kpi_unreliability",
    "mean_time_to_failure",
    "minimal_cut_sets",
    "modular_unreliability",
    "minimal_path_sets",
    "tornado",
    "unreliability",
    "unreliability_bounds",
]
