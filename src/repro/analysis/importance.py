"""Component importance measures for static fault trees.

Importance measures rank basic events by their contribution to system
failure — the quantitative backbone of reliability-centered
maintenance: inspection effort should flow to the components that
matter.  All measures are computed from one compiled BDD by
re-evaluating the top probability with individual event probabilities
pinned to 0 or 1.

Implemented measures (all at a mission time ``t``):

* **Birnbaum** ``B_i = P(top | p_i=1) - P(top | p_i=0)`` — the
  sensitivity of system unreliability to component unreliability;
* **criticality** ``C_i = B_i * p_i / P(top)`` — the probability that
  component ``i`` is the critical failure given system failure;
* **Fussell-Vesely** ``FV_i = 1 - P(top | p_i=0) / P(top)`` — the
  fraction of system failure probability involving ``i``;
* **RAW** (risk achievement worth) ``P(top | p_i=1) / P(top)``;
* **RRW** (risk reduction worth) ``P(top) / P(top | p_i=0)``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.analysis.bdd import build_bdd
from repro.analysis.unreliability import _check_static, basic_event_probabilities
from repro.core.tree import FaultMaintenanceTree
from repro.errors import AnalysisError

__all__ = ["ImportanceMeasures", "birnbaum_importance", "importance_table"]


@dataclass(frozen=True)
class ImportanceMeasures:
    """All importance measures of one basic event at one mission time."""

    event: str
    probability: float
    birnbaum: float
    criticality: float
    fussell_vesely: float
    raw: float
    rrw: float


def birnbaum_importance(
    tree: FaultMaintenanceTree,
    t: float,
    ignore_maintenance: bool = False,
    ignore_dependencies: bool = False,
    treat_pand_as_and: bool = False,
) -> Dict[str, float]:
    """Birnbaum importance of every basic event at mission time ``t``."""
    table = importance_table(
        tree,
        t,
        ignore_maintenance=ignore_maintenance,
        ignore_dependencies=ignore_dependencies,
        treat_pand_as_and=treat_pand_as_and,
    )
    return {name: measures.birnbaum for name, measures in table.items()}


def importance_table(
    tree: FaultMaintenanceTree,
    t: float,
    ignore_maintenance: bool = False,
    ignore_dependencies: bool = False,
    treat_pand_as_and: bool = False,
) -> Dict[str, ImportanceMeasures]:
    """All importance measures for all basic events at mission time ``t``.

    Raises
    ------
    AnalysisError
        If the system unreliability at ``t`` is zero (the relative
        measures are undefined).
    """
    _check_static(tree, ignore_maintenance, ignore_dependencies)
    probabilities = basic_event_probabilities(tree, t)
    bdd, root = build_bdd(tree, treat_pand_as_and=treat_pand_as_and)
    top = bdd.probability(root, probabilities)
    if top <= 0.0:
        raise AnalysisError(
            f"system unreliability at t={t} is zero; relative importance "
            "measures are undefined"
        )

    result: Dict[str, ImportanceMeasures] = {}
    for name in tree.basic_events:
        pinned = dict(probabilities)
        pinned[name] = 1.0
        with_failed = bdd.probability(root, pinned)
        pinned[name] = 0.0
        with_perfect = bdd.probability(root, pinned)
        birnbaum = with_failed - with_perfect
        p = probabilities[name]
        result[name] = ImportanceMeasures(
            event=name,
            probability=p,
            birnbaum=birnbaum,
            criticality=birnbaum * p / top,
            fussell_vesely=1.0 - with_perfect / top,
            raw=with_failed / top,
            rrw=top / with_perfect if with_perfect > 0.0 else math.inf,
        )
    return result
