"""Exact analysis of a single component under *periodic* inspection.

The CTMC compiler (:mod:`repro.ctmc.compiler`) validates the simulator
on exponentially-timed maintenance; this module closes the remaining
gap and validates the **deterministic** (periodic) inspection semantics
exactly, for the single-component case:

One extended basic event with phases ``0..N-1`` (failure on leaving
phase ``N-1``) is inspected at times ``offset, offset+T, offset+2T, …``.
Between inspections the phase distribution evolves by the matrix
exponential of the degradation generator; at an inspection, the
detection map fires: mass in phases at or past the threshold moves to
the action's restored phase with the module's detection probability.

Two failure responses, matching the simulator's strategies:

* **absorbing** (``renew_on_failure=False``) — the failed state is
  absorbing; :meth:`PeriodicInspectionModel.unreliability` is exact.
* **renewal** (``renew_on_failure=True``) — failure transitions are
  redirected to phase 0 (instant corrective renewal) and the expected
  number of failures is the time integral of the failure flux, computed
  *exactly* per inter-inspection interval with Van Loan's augmented
  matrix-exponential construction.

No sampling is involved anywhere, so these values are ground truth for
the simulator's periodic-timing code path (``tests/test_periodic.py``).
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np
from scipy.linalg import expm

from repro.core.events import BasicEvent
from repro.errors import AnalysisError, UnsupportedModelError
from repro.maintenance.modules import InspectionModule

__all__ = ["PeriodicInspectionModel", "unreliability", "expected_failures"]


class PeriodicInspectionModel:
    """Exact phase-distribution evolution of one inspected component.

    Parameters
    ----------
    event:
        The extended basic event (its failure is the system failure).
    module:
        A periodic inspection module targeting exactly this event; the
        planning delay must be zero (a pending delayed action would
        change the dynamics between epochs).
    renew_on_failure:
        See the module docstring.
    """

    def __init__(
        self,
        event: BasicEvent,
        module: InspectionModule,
        renew_on_failure: bool = False,
    ):
        if module.delay != 0.0:
            raise UnsupportedModelError(
                "periodic-inspection analysis requires delay=0"
            )
        if module.timing != "periodic":
            raise UnsupportedModelError(
                "module must have timing='periodic' (use the CTMC "
                "compiler for exponential timing)"
            )
        if tuple(module.targets) != (event.name,):
            raise UnsupportedModelError(
                "module must target exactly the analysed event"
            )
        if event.threshold is None:
            raise UnsupportedModelError(f"{event.name} has no threshold")
        self.event = event
        self.module = module
        self.renew_on_failure = bool(renew_on_failure)
        n = event.phases
        if self.renew_on_failure:
            # States 0..n-1; the last phase's exit is redirected to 0.
            generator = np.zeros((n, n))
            for i, rate in enumerate(event.phase_rates):
                generator[i, i] = -rate
                if i + 1 < n:
                    generator[i, i + 1] = rate
                else:
                    generator[i, 0] += rate
            flux = np.zeros((n, 1))
            flux[n - 1, 0] = event.phase_rates[n - 1]
            # Van Loan block: expm([[A, c],[0,0]] * t) has expm(A t) in
            # the top-left and  integral_0^t expm(A s) c ds  top-right.
            self._augmented = np.zeros((n + 1, n + 1))
            self._augmented[:n, :n] = generator
            self._augmented[:n, n:] = flux
            self._dimension = n
        else:
            # States 0..n with the failed state n absorbing.
            generator = np.zeros((n + 1, n + 1))
            for i, rate in enumerate(event.phase_rates):
                generator[i, i] = -rate
                generator[i, i + 1] = rate
            self._augmented = generator  # no flux block needed
            self._dimension = n + 1
        self._step_cache: Dict[float, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Building blocks
    # ------------------------------------------------------------------
    def _blocks(self, dt: float) -> Tuple[np.ndarray, np.ndarray]:
        """(transition matrix, flux-integral column) for a step ``dt``."""
        key = round(dt, 12)
        hit = self._step_cache.get(key)
        if hit is None:
            hit = expm(self._augmented * dt)
            self._step_cache[key] = hit
        n = self._dimension
        if self.renew_on_failure:
            return hit[:n, :n], hit[:n, n]
        return hit, np.zeros(n)

    def _inspect(self, v: np.ndarray) -> np.ndarray:
        """Apply the detection map to a phase distribution."""
        event = self.event
        module = self.module
        out = v.copy()
        p = module.detection_probability
        restored = module.action.resulting_phase
        for phase in range(event.threshold, event.phases):
            mass = out[phase]
            if mass <= 0.0:
                continue
            detected = p * mass
            out[phase] -= detected
            out[restored(phase)] += detected
        if (
            not self.renew_on_failure
            and module.detect_failures
        ):
            # Absorbing mode: the failed state is the measured event;
            # detection of a failed component is irrelevant to the
            # first-failure distribution, so nothing moves.
            pass
        return out

    # ------------------------------------------------------------------
    # Evolution
    # ------------------------------------------------------------------
    def _evolve(self, t: float) -> Tuple[np.ndarray, float]:
        """Phase distribution at ``t`` and accumulated expected failures."""
        if t < 0.0:
            raise AnalysisError(f"time must be non-negative, got {t}")
        v = np.zeros(self._dimension)
        v[0] = 1.0
        failures = 0.0
        now = 0.0
        next_inspection = self.module.offset
        while next_inspection <= t + 1e-15:
            dt = next_inspection - now
            if dt > 1e-15:
                transition, flux_integral = self._blocks(dt)
                failures += float(v @ flux_integral)
                v = v @ transition
            v = self._inspect(v)
            now = next_inspection
            next_inspection += self.module.period
        if t - now > 1e-15:
            transition, flux_integral = self._blocks(t - now)
            failures += float(v @ flux_integral)
            v = v @ transition
        return v, failures

    def unreliability(self, t: float) -> float:
        """P(component has failed by ``t``) in absorbing mode."""
        if self.renew_on_failure:
            raise AnalysisError(
                "unreliability is defined for renew_on_failure=False"
            )
        v, _ = self._evolve(t)
        return min(1.0, max(0.0, float(v[self.event.phases])))

    def expected_failures(self, t: float) -> float:
        """E[# failures in [0, t]] in renewal mode — exact."""
        if not self.renew_on_failure:
            raise AnalysisError(
                "expected_failures requires renew_on_failure=True"
            )
        _, failures = self._evolve(t)
        return failures

    def phase_distribution(self, t: float) -> np.ndarray:
        """Phase distribution at ``t`` (diagnostics)."""
        v, _ = self._evolve(t)
        return v


def unreliability(
    event: BasicEvent, module: InspectionModule, t: float
) -> float:
    """Exact P(failure by ``t``) of an inspected component (absorbing)."""
    return PeriodicInspectionModel(
        event, module, renew_on_failure=False
    ).unreliability(t)


def expected_failures(
    event: BasicEvent, module: InspectionModule, t: float
) -> float:
    """Exact E[failures in [0, t]] with instant corrective renewal."""
    return PeriodicInspectionModel(
        event, module, renew_on_failure=True
    ).expected_failures(t)
