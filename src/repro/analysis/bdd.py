"""Reduced ordered binary decision diagrams (ROBDD) of structure functions.

The BDD is the workhorse of exact static fault-tree quantification: the
structure function is compiled once into a canonical DAG, after which
the top-event probability for *any* vector of basic-event probabilities
is a single linear-time traversal.  Importance measures reuse the same
diagram with modified probability vectors.

The implementation is a classical ITE-based ROBDD with a unique table
and computed-table memoization; node identifiers are integers, with
``0`` and ``1`` the terminal nodes.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.events import BasicEvent
from repro.core.gates import (
    AndGate,
    Gate,
    InhibitGate,
    OrGate,
    PandGate,
    VotingGate,
)
from repro.core.nodes import Element
from repro.core.tree import FaultMaintenanceTree
from repro.errors import AnalysisError, UnsupportedModelError

__all__ = ["BDD", "build_bdd"]

#: Terminal node ids.
ZERO = 0
ONE = 1


class BDD:
    """A shared ROBDD over a fixed variable order.

    Variables are basic-event names; ``order[i]`` is the variable at
    level ``i`` (levels closer to the root have smaller indices).
    """

    def __init__(self, order: Sequence[str]):
        if len(set(order)) != len(order):
            raise AnalysisError("variable order contains duplicates")
        self.order: Tuple[str, ...] = tuple(order)
        self._level: Dict[str, int] = {name: i for i, name in enumerate(self.order)}
        # Internal node storage: id -> (level, low, high); ids from 2.
        self._nodes: List[Tuple[int, int, int]] = []
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def mk(self, level: int, low: int, high: int) -> int:
        """Hash-consed node constructor (applies the reduction rules)."""
        if low == high:
            return low
        key = (level, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes) + 2
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, name: str) -> int:
        """The BDD of a single variable."""
        level = self._level.get(name)
        if level is None:
            raise AnalysisError(f"variable {name!r} not in BDD order")
        return self.mk(level, ZERO, ONE)

    def node(self, u: int) -> Tuple[int, int, int]:
        """(level, low, high) of internal node ``u``."""
        if u < 2:
            raise AnalysisError(f"node {u} is terminal")
        return self._nodes[u - 2]

    def level_of(self, u: int) -> int:
        """Level of node ``u``; terminals sit below every variable."""
        if u < 2:
            return len(self.order)
        return self._nodes[u - 2][0]

    # ------------------------------------------------------------------
    # Boolean operations
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f ? g : h`` as a BDD."""
        if f == ONE:
            return g
        if f == ZERO:
            return h
        if g == h:
            return g
        if g == ONE and h == ZERO:
            return f
        key = (f, g, h)
        hit = self._ite_cache.get(key)
        if hit is not None:
            return hit
        level = min(self.level_of(f), self.level_of(g), self.level_of(h))
        f0, f1 = self._cofactors(f, level)
        g0, g1 = self._cofactors(g, level)
        h0, h1 = self._cofactors(h, level)
        result = self.mk(level, self.ite(f0, g0, h0), self.ite(f1, g1, h1))
        self._ite_cache[key] = result
        return result

    def _cofactors(self, u: int, level: int) -> Tuple[int, int]:
        if u < 2 or self._nodes[u - 2][0] != level:
            return u, u
        _, low, high = self._nodes[u - 2]
        return low, high

    def apply_and(self, u: int, v: int) -> int:
        """Conjunction of two BDDs."""
        return self.ite(u, v, ZERO)

    def apply_or(self, u: int, v: int) -> int:
        """Disjunction of two BDDs."""
        return self.ite(u, ONE, v)

    def negate(self, u: int) -> int:
        """Complement of a BDD."""
        return self.ite(u, ZERO, ONE)

    # ------------------------------------------------------------------
    # Quantification
    # ------------------------------------------------------------------
    def probability(self, root: int, probabilities: Mapping[str, float]) -> float:
        """P(structure function = 1) for independent variables.

        ``probabilities`` maps every variable appearing on a path of
        the diagram to its failure probability in [0, 1].
        """
        cache: Dict[int, float] = {ZERO: 0.0, ONE: 1.0}

        def _prob(u: int) -> float:
            hit = cache.get(u)
            if hit is not None:
                return hit
            level, low, high = self._nodes[u - 2]
            name = self.order[level]
            p = probabilities.get(name)
            if p is None:
                raise AnalysisError(f"no probability given for {name!r}")
            if not 0.0 <= p <= 1.0:
                raise AnalysisError(f"probability of {name!r} is {p}, not in [0,1]")
            value = p * _prob(high) + (1.0 - p) * _prob(low)
            cache[u] = value
            return value

        return _prob(root)

    def evaluate(self, root: int, assignment: Mapping[str, bool]) -> bool:
        """Evaluate the function on a concrete true/false assignment."""
        u = root
        while u >= 2:
            level, low, high = self._nodes[u - 2]
            name = self.order[level]
            if name not in assignment:
                raise AnalysisError(f"assignment misses variable {name!r}")
            u = high if assignment[name] else low
        return u == ONE

    def size(self, root: int) -> int:
        """Number of internal nodes reachable from ``root``."""
        seen = set()
        stack = [root]
        while stack:
            u = stack.pop()
            if u < 2 or u in seen:
                continue
            seen.add(u)
            _, low, high = self._nodes[u - 2]
            stack.extend((low, high))
        return len(seen)

    def __len__(self) -> int:
        return len(self._nodes)


def build_bdd(
    tree: FaultMaintenanceTree,
    order: Optional[Sequence[str]] = None,
    treat_pand_as_and: bool = False,
) -> Tuple[BDD, int]:
    """Compile ``tree``'s structure function into a BDD.

    Parameters
    ----------
    tree:
        The fault tree.
    order:
        Variable (basic event) order; defaults to depth-first discovery
        order, a decent heuristic that keeps related events adjacent.
    treat_pand_as_and:
        Over-approximate PAND as AND instead of raising.

    Returns
    -------
    (bdd, root):
        The diagram manager and the root node of the top event.
    """
    if tree.has_dynamic_gates and not treat_pand_as_and:
        raise UnsupportedModelError(
            "tree contains PAND gates; pass treat_pand_as_and=True for an "
            "over-approximation or use the simulator for exact results"
        )
    if order is None:
        order = _dfs_order(tree)
    else:
        missing = set(tree.basic_events) - set(order)
        if missing:
            raise AnalysisError(f"order misses basic events {sorted(missing)}")
    bdd = BDD(order)
    cache: Dict[str, int] = {}

    def _compile(node: Element) -> int:
        hit = cache.get(node.name)
        if hit is not None:
            return hit
        if isinstance(node, BasicEvent):
            result = bdd.var(node.name)
        else:
            assert isinstance(node, Gate)
            children = [_compile(child) for child in node.children]
            result = _compile_gate(bdd, node, children)
        cache[node.name] = result
        return result

    return bdd, _compile(tree.top)


def _compile_gate(bdd: BDD, gate: Gate, children: List[int]) -> int:
    if isinstance(gate, OrGate):
        result = ZERO
        for child in children:
            result = bdd.apply_or(result, child)
        return result
    if isinstance(gate, (AndGate, InhibitGate, PandGate)):
        result = ONE
        for child in children:
            result = bdd.apply_and(result, child)
        return result
    if isinstance(gate, VotingGate):
        return _compile_voting(bdd, gate.k, children)
    raise UnsupportedModelError(f"no BDD rule for gate {type(gate).__name__}")


def _compile_voting(bdd: BDD, k: int, children: List[int]) -> int:
    """k-out-of-N over arbitrary child functions, by dynamic programming.

    ``table[j]`` holds the BDD of "at least j of the remaining children
    fail", built from the last child backwards.
    """
    n = len(children)
    # table indexed by j (0..k); start past the last child.
    table = [ONE] + [ZERO] * k
    for i in range(n - 1, -1, -1):
        new_table = [ONE] * (k + 1)
        for j in range(1, k + 1):
            new_table[j] = bdd.ite(children[i], table[j - 1], table[j])
        table = new_table
    return table[k]


def _dfs_order(tree: FaultMaintenanceTree) -> List[str]:
    order: List[str] = []
    seen = set()

    def _walk(node: Element) -> None:
        if node.name in seen:
            return
        seen.add(node.name)
        if isinstance(node, BasicEvent):
            order.append(node.name)
            return
        assert isinstance(node, Gate)
        for child in node.children:
            _walk(child)

    _walk(tree.top)
    return order
