"""The top-level facade is complete, importable, and documented.

``repro.__all__`` is the supported public surface (docs/api.md, "API
stability & deprecation"); these tests pin the contract: every name
resolves to a real object, the studies/rare-event surface added by the
API redesign is present, and every name appears in docs/api.md.
"""

import os

import pytest

import repro

DOCS_PATH = os.path.join(os.path.dirname(__file__), "..", "docs", "api.md")


def _api_doc() -> str:
    with open(DOCS_PATH, encoding="utf-8") as handle:
        return handle.read()


@pytest.mark.parametrize("name", sorted(repro.__all__))
def test_all_name_imports(name):
    assert hasattr(repro, name), f"repro.__all__ lists {name!r} but it is missing"
    assert getattr(repro, name) is not None


@pytest.mark.parametrize("name", sorted(repro.__all__))
def test_all_name_documented(name):
    assert name in _api_doc(), f"{name!r} is in repro.__all__ but not in docs/api.md"


def test_star_import_matches_all():
    namespace = {}
    exec("from repro import *", namespace)
    exported = {key for key in namespace if not key.startswith("__")}
    assert exported == set(repro.__all__) - {"__version__"}


def test_studies_surface_reexported():
    from repro.studies.runner import StudyRunner, get_runner, use_runner

    assert repro.StudyRunner is StudyRunner
    assert repro.get_runner is get_runner
    assert repro.use_runner is use_runner
    assert repro.StudyRequest is repro.studies.StudyRequest


def test_rareevent_surface_reexported():
    from repro.rareevent.estimator import RareEventConfig, RareEventResult

    assert repro.RareEventConfig is RareEventConfig
    assert repro.RareEventResult is RareEventResult


def test_facade_runs_a_study():
    """The documented one-stop workflow works end to end."""
    request = repro.StudyRequest(
        tree=repro.eijoint.build_ei_joint_fmt(),
        strategy=repro.eijoint.current_policy(),
        horizon=10.0,
        seed=7,
        n_runs=20,
    )
    runner = repro.StudyRunner()
    with repro.use_runner(runner):
        summary = repro.get_runner().summary(request)
    assert 0.0 <= summary.unreliability.estimate <= 1.0
    # Same request again is a memo hit, bit-identical.
    assert runner.summary(request) is summary
