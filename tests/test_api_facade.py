"""The top-level facade is complete, importable, and documented.

``repro.__all__`` is the supported public surface (docs/api.md, "API
stability & deprecation"); these tests pin the contract: every name
resolves to a real object, the studies/rare-event surface added by the
API redesign is present, and every name appears in docs/api.md.
"""

import os

import pytest

import repro

DOCS_PATH = os.path.join(os.path.dirname(__file__), "..", "docs", "api.md")


def _api_doc() -> str:
    with open(DOCS_PATH, encoding="utf-8") as handle:
        return handle.read()


@pytest.mark.parametrize("name", sorted(repro.__all__))
def test_all_name_imports(name):
    assert hasattr(repro, name), f"repro.__all__ lists {name!r} but it is missing"
    assert getattr(repro, name) is not None


@pytest.mark.parametrize("name", sorted(repro.__all__))
def test_all_name_documented(name):
    assert name in _api_doc(), f"{name!r} is in repro.__all__ but not in docs/api.md"


def test_star_import_matches_all():
    namespace = {}
    exec("from repro import *", namespace)
    exported = {key for key in namespace if not key.startswith("__")}
    assert exported == set(repro.__all__) - {"__version__"}


def test_studies_surface_reexported():
    from repro.studies.runner import StudyRunner, get_runner, use_runner

    assert repro.StudyRunner is StudyRunner
    assert repro.get_runner is get_runner
    assert repro.use_runner is use_runner
    assert repro.StudyRequest is repro.studies.StudyRequest


def test_rareevent_surface_reexported():
    from repro.rareevent.estimator import RareEventConfig, RareEventResult

    assert repro.RareEventConfig is RareEventConfig
    assert repro.RareEventResult is RareEventResult


def test_facade_runs_a_study():
    """The documented one-stop workflow works end to end."""
    request = repro.StudyRequest(
        tree=repro.eijoint.build_ei_joint_fmt(),
        strategy=repro.eijoint.current_policy(),
        horizon=10.0,
        seed=7,
        n_runs=20,
    )
    runner = repro.StudyRunner()
    with repro.use_runner(runner):
        summary = repro.get_runner().summary(request)
    assert 0.0 <= summary.unreliability.estimate <= 1.0
    # Same request again is a memo hit, bit-identical.
    assert runner.summary(request) is summary


def test_service_surface_reexported():
    from repro.service.app import StudyService, serve_app
    from repro.service.wire import (
        WIRE_SCHEMA_VERSION,
        WireError,
        decode_wire,
        encode_wire,
    )

    assert repro.serve_app is serve_app
    assert repro.StudyService is StudyService
    assert repro.encode_wire is encode_wire
    assert repro.decode_wire is decode_wire
    assert repro.WireError is WireError
    assert repro.WIRE_SCHEMA_VERSION == WIRE_SCHEMA_VERSION
    assert repro.service.serve_app is serve_app  # lazy submodule attr


def test_wire_error_is_a_validation_error():
    # Wire rejections participate in the package's error taxonomy, so
    # callers catching repro.ValidationError keep working.
    assert issubclass(repro.WireError, repro.ValidationError)


def test_facade_roundtrips_a_request_through_the_wire():
    request = repro.StudyRequest(
        tree=repro.eijoint.build_ei_joint_fmt(),
        strategy=repro.eijoint.current_policy(),
        horizon=10.0,
        seed=7,
        n_runs=20,
    )
    decoded = repro.decode_wire(
        repro.encode_wire(request), expect="study_request"
    )
    assert decoded.key().digest == request.key().digest
