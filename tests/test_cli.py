"""Command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.dsl import save_file


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig6" in out


def test_unknown_experiment(capsys):
    assert main(["nonsense"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    assert "ferrous_dust" in capsys.readouterr().out


def test_quick_flag_and_overrides(capsys):
    code = main(["fig5", "--quick", "--runs", "100", "--horizon", "20", "--seed", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ENF per year" in out


def test_analyze_missing_path(capsys):
    assert main(["analyze"]) == 2
    assert "missing model file" in capsys.readouterr().err


def test_analyze_model_file(tmp_path, capsys, layered_tree):
    path = tmp_path / "model.fmt"
    save_file(layered_tree, path)
    assert main(["analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "minimal cut sets" in out
    assert "unreliability" in out


def test_simulate_model_file(tmp_path, capsys, maintained_tree):
    path = tmp_path / "model.fmt"
    save_file(maintained_tree, path)
    assert main(["simulate", str(path), "--runs", "50", "--horizon", "10"]) == 0
    out = capsys.readouterr().out
    assert "failures/yr" in out
    assert "50 trajectories" in out


def test_simulate_absorbing_flag(tmp_path, capsys, maintained_tree):
    path = tmp_path / "model.fmt"
    save_file(maintained_tree, path)
    assert main(["simulate", str(path), "--runs", "50", "--absorbing"]) == 0
    assert "unreliability" in capsys.readouterr().out


def test_simulate_kernel_flag(tmp_path, capsys, maintained_tree):
    path = tmp_path / "model.fmt"
    save_file(maintained_tree, path)
    code = main(
        ["simulate", str(path), "--runs", "50", "--horizon", "10",
         "--kernel", "vectorized"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "vectorized kernel" in out
    assert "failures/yr" in out


def test_simulate_kernel_flag_rejects_unknown(tmp_path, maintained_tree):
    path = tmp_path / "model.fmt"
    save_file(maintained_tree, path)
    with pytest.raises(SystemExit):
        main(["simulate", str(path), "--kernel", "warp"])


def test_simulate_missing_path(capsys):
    assert main(["simulate"]) == 2
    assert "missing model file" in capsys.readouterr().err


def test_render_ascii(tmp_path, capsys, layered_tree):
    path = tmp_path / "model.fmt"
    save_file(layered_tree, path)
    assert main(["render", str(path)]) == 0
    out = capsys.readouterr().out
    assert "[OR]" in out or "[AND]" in out


def test_render_dot(tmp_path, capsys, layered_tree):
    path = tmp_path / "model.fmt"
    save_file(layered_tree, path)
    assert main(["render", str(path), "--dot"]) == 0
    assert capsys.readouterr().out.startswith("digraph")


def test_render_missing_path(capsys):
    assert main(["render"]) == 2
    assert "missing model file" in capsys.readouterr().err


def test_shipped_example_models_load():
    from pathlib import Path

    from repro.dsl import load_file

    models = Path(__file__).parent.parent / "examples" / "models"
    for path in sorted(models.glob("*.fmt")):
        tree = load_file(path)
        assert tree.basic_events


def test_parser_version():
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["--version"])
    assert excinfo.value.code == 0


def test_profile_and_metrics_out(tmp_path, capsys):
    import json

    metrics_path = tmp_path / "m.json"
    code = main(
        [
            "fig5",
            "--quick",
            "--runs",
            "100",
            "--horizon",
            "20",
            "--profile",
            "--metrics-out",
            str(metrics_path),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "== profile ==" in out
    assert "sim.simulate.seconds" in out
    assert "wall time:" in out  # per-experiment timing surfaced as a note
    metrics = json.loads(metrics_path.read_text())
    assert metrics["counters"]["sim.trajectories"] > 0
    assert metrics["timers"]["experiment.fig5.seconds"]["count"] == 1


def test_no_profile_keeps_output_clean(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "== profile ==" not in out
    assert "wall time:" not in out


def test_trace_writes_jsonl(tmp_path, capsys, maintained_tree):
    import json

    from repro.dsl import save_file

    model = tmp_path / "model.fmt"
    save_file(maintained_tree, model)
    out_path = tmp_path / "trace.jsonl"
    code = main(
        [
            "trace",
            str(model),
            "--runs",
            "5",
            "--horizon",
            "10",
            "--out",
            str(out_path),
        ]
    )
    assert code == 0
    assert "wrote" in capsys.readouterr().out
    lines = [json.loads(line) for line in out_path.read_text().splitlines()]
    assert lines[0]["record"] == "header"
    assert lines[0]["n_trajectories"] == 5
    assert sum(1 for r in lines if r["record"] == "trajectory") == 5


def test_trace_to_stdout(tmp_path, capsys, maintained_tree):
    import json

    from repro.dsl import save_file

    model = tmp_path / "model.fmt"
    save_file(maintained_tree, model)
    assert main(["trace", str(model), "--runs", "2", "--horizon", "5"]) == 0
    lines = capsys.readouterr().out.splitlines()
    assert json.loads(lines[0])["record"] == "header"


def test_trace_missing_path(capsys):
    assert main(["trace"]) == 2
    assert "missing model file" in capsys.readouterr().err


def test_log_level_flag_emits_logs(tmp_path, capsys, maintained_tree):
    import logging

    from repro.dsl import save_file

    model = tmp_path / "model.fmt"
    save_file(maintained_tree, model)
    try:
        assert (
            main(["trace", str(model), "--runs", "1", "--horizon", "2",
                  "--out", str(tmp_path / "t.jsonl"), "--log-level", "info"])
            == 0
        )
    finally:
        logging.getLogger("repro").setLevel(logging.WARNING)
    assert logging.getLogger("repro").handlers  # setup_logging installed one


def test_cache_dir_warm_rerun_simulates_nothing(tmp_path, capsys):
    import json

    cache = tmp_path / "cache"
    args = ["fig5", "--quick", "--runs", "60", "--horizon", "10",
            "--cache-dir", str(cache)]
    assert main(args + ["--metrics-out", str(tmp_path / "m1.json")]) == 0
    first_out = capsys.readouterr().out
    assert cache.is_dir() and any(cache.glob("*.pkl"))

    assert main(args + ["--metrics-out", str(tmp_path / "m2.json")]) == 0
    second_out = capsys.readouterr().out

    m1 = json.loads((tmp_path / "m1.json").read_text())
    m2 = json.loads((tmp_path / "m2.json").read_text())
    assert m1["counters"]["study.fresh_trajectories"] > 0
    assert "study.fresh_trajectories" not in m2["counters"]
    assert m2["counters"]["study.disk_hits"] > 0
    # The rendered table is identical modulo the wall-time note.
    strip = lambda text: [
        line for line in text.splitlines()
        if not line.startswith("note: wall time")
    ]
    assert strip(first_out) == strip(second_out)


def test_no_cache_flag_bypasses_disk(tmp_path, capsys):
    cache = tmp_path / "cache"
    args = ["fig5", "--quick", "--runs", "60", "--horizon", "10",
            "--cache-dir", str(cache), "--no-cache"]
    assert main(args) == 0
    capsys.readouterr()
    assert not cache.exists()


def test_processes_flag_validation(capsys):
    assert main(["fig5", "--quick", "--processes", "0"]) == 2
    assert "--processes" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Subparser CLI (PR 8): per-verb help, deprecation shim, serve verb
# ----------------------------------------------------------------------


def test_per_verb_help_is_scoped(capsys):
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["simulate", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--kernel" in out and "--absorbing" in out
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["render", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--dot" in out and "--kernel" not in out


def test_serve_verb_exists_with_service_flags(capsys):
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["serve", "--help"])
    assert excinfo.value.code == 0
    out = capsys.readouterr().out
    assert "--max-pending" in out and "--workers" in out and "--port" in out


def test_serve_validates_worker_count(capsys):
    assert main(["serve", "--workers", "0", "--port", "0"]) == 2
    assert "--workers" in capsys.readouterr().err
    assert main(["serve", "--max-pending", "0", "--port", "0"]) == 2
    assert "--max-pending" in capsys.readouterr().err


def test_options_before_command_rotate_with_deprecation(capsys):
    with pytest.warns(DeprecationWarning, match="before the command"):
        assert main(["--quick", "table1"]) == 0
    assert "ferrous_dust" in capsys.readouterr().out


def test_command_first_form_warns_nothing(recwarn, capsys):
    assert main(["table1"]) == 0
    capsys.readouterr()
    deprecations = [
        w for w in recwarn.list if issubclass(w.category, DeprecationWarning)
    ]
    assert not deprecations


def test_missing_command_is_an_error(capsys):
    assert main([]) == 2
    assert "missing command" in capsys.readouterr().err


def test_list_mentions_serve(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "serve" in out and "metrics-serve" in out
