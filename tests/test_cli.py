"""Command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.dsl import save_file


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "table1" in out and "fig6" in out


def test_unknown_experiment(capsys):
    assert main(["nonsense"]) == 2
    assert "unknown experiment" in capsys.readouterr().err


def test_table1_runs(capsys):
    assert main(["table1"]) == 0
    assert "ferrous_dust" in capsys.readouterr().out


def test_quick_flag_and_overrides(capsys):
    code = main(["fig5", "--quick", "--runs", "100", "--horizon", "20", "--seed", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "ENF per year" in out


def test_analyze_missing_path(capsys):
    assert main(["analyze"]) == 2
    assert "missing model file" in capsys.readouterr().err


def test_analyze_model_file(tmp_path, capsys, layered_tree):
    path = tmp_path / "model.fmt"
    save_file(layered_tree, path)
    assert main(["analyze", str(path)]) == 0
    out = capsys.readouterr().out
    assert "minimal cut sets" in out
    assert "unreliability" in out


def test_simulate_model_file(tmp_path, capsys, maintained_tree):
    path = tmp_path / "model.fmt"
    save_file(maintained_tree, path)
    assert main(["simulate", str(path), "--runs", "50", "--horizon", "10"]) == 0
    out = capsys.readouterr().out
    assert "failures/yr" in out
    assert "50 trajectories" in out


def test_simulate_absorbing_flag(tmp_path, capsys, maintained_tree):
    path = tmp_path / "model.fmt"
    save_file(maintained_tree, path)
    assert main(["simulate", str(path), "--runs", "50", "--absorbing"]) == 0
    assert "unreliability" in capsys.readouterr().out


def test_simulate_missing_path(capsys):
    assert main(["simulate"]) == 2
    assert "missing model file" in capsys.readouterr().err


def test_render_ascii(tmp_path, capsys, layered_tree):
    path = tmp_path / "model.fmt"
    save_file(layered_tree, path)
    assert main(["render", str(path)]) == 0
    out = capsys.readouterr().out
    assert "[OR]" in out or "[AND]" in out


def test_render_dot(tmp_path, capsys, layered_tree):
    path = tmp_path / "model.fmt"
    save_file(layered_tree, path)
    assert main(["render", str(path), "--dot"]) == 0
    assert capsys.readouterr().out.startswith("digraph")


def test_render_missing_path(capsys):
    assert main(["render"]) == 2
    assert "missing model file" in capsys.readouterr().err


def test_shipped_example_models_load():
    from pathlib import Path

    from repro.dsl import load_file

    models = Path(__file__).parent.parent / "examples" / "models"
    for path in sorted(models.glob("*.fmt")):
        tree = load_file(path)
        assert tree.basic_events


def test_parser_version():
    parser = build_parser()
    with pytest.raises(SystemExit) as excinfo:
        parser.parse_args(["--version"])
    assert excinfo.value.code == 0
