"""KPI summarization from trajectories."""

import pytest

from repro.errors import ValidationError
from repro.maintenance.costs import CostBreakdown
from repro.simulation.metrics import (
    availability_curve,
    reliability_curve,
    summarize,
)
from repro.simulation.trace import ComponentEvent, Trajectory


def _trajectory(horizon=10.0, failures=(), downtime=0.0, cost_total=0.0, **kw):
    trajectory = Trajectory(horizon=horizon, **kw)
    trajectory.failure_times = list(failures)
    trajectory.downtime = downtime
    trajectory.costs = CostBreakdown(failures=cost_total)
    return trajectory


def test_trajectory_properties():
    trajectory = _trajectory(failures=[2.0, 5.0], downtime=1.0)
    assert trajectory.n_failures == 2
    assert trajectory.first_failure == 2.0
    assert trajectory.failed_by_horizon
    assert trajectory.availability == pytest.approx(0.9)
    assert trajectory.failures_per_year == pytest.approx(0.2)
    assert trajectory.survived_until(1.9)
    assert not trajectory.survived_until(2.0)


def test_trajectory_no_failures():
    trajectory = _trajectory()
    assert trajectory.first_failure is None
    assert not trajectory.failed_by_horizon
    assert trajectory.survived_until(10.0)


def test_summarize_empty_rejected():
    with pytest.raises(ValidationError):
        summarize([])


def test_summarize_inconsistent_horizons_rejected():
    with pytest.raises(ValidationError):
        summarize([_trajectory(horizon=10.0), _trajectory(horizon=20.0)])


def test_summarize_unreliability_counts_failed_runs():
    trajectories = [_trajectory(failures=[1.0])] * 3 + [_trajectory()] * 7
    summary = summarize(trajectories)
    assert summary.unreliability.estimate == pytest.approx(0.3)
    assert summary.reliability == pytest.approx(0.7)


def test_summarize_zero_failures_wilson_fallback():
    """An all-survivor sample must not claim a zero-width certainty."""
    summary = summarize([_trajectory()] * 50)
    interval = summary.expected_failures
    assert interval.estimate == 0.0
    assert interval.lower == 0.0
    assert interval.upper > 0.0
    # Matches the Wilson zero-success bound used for the unreliability.
    assert interval.upper == pytest.approx(summary.unreliability.upper)
    assert summary.failures_per_year.upper == pytest.approx(
        interval.upper / 10.0
    )


def test_summarize_expected_failures():
    trajectories = [_trajectory(failures=[1.0, 2.0]), _trajectory()]
    summary = summarize(trajectories)
    assert summary.expected_failures.estimate == pytest.approx(1.0)
    assert summary.failures_per_year.estimate == pytest.approx(0.1)
    assert summary.mean_failures == pytest.approx(1.0)


def test_summarize_costs_per_year():
    trajectories = [_trajectory(cost_total=100.0), _trajectory(cost_total=300.0)]
    summary = summarize(trajectories)
    assert summary.cost_per_year.estimate == pytest.approx(20.0)
    assert summary.cost_breakdown_per_year.failures == pytest.approx(20.0)


def test_summarize_counts_per_year():
    trajectory = _trajectory()
    trajectory.n_inspections = 40
    trajectory.n_preventive_actions = 10
    trajectory.n_corrective_replacements = 5
    summary = summarize([trajectory])
    assert summary.inspections_per_year == pytest.approx(4.0)
    assert summary.preventive_actions_per_year == pytest.approx(1.0)
    assert summary.corrective_replacements_per_year == pytest.approx(0.5)


def test_summarize_availability():
    trajectories = [_trajectory(downtime=2.0), _trajectory(downtime=0.0)]
    summary = summarize(trajectories)
    assert summary.availability.estimate == pytest.approx(0.9)


def test_reliability_curve_values():
    trajectories = [
        _trajectory(failures=[1.0]),
        _trajectory(failures=[5.0]),
        _trajectory(),
        _trajectory(),
    ]
    times, intervals = reliability_curve(trajectories, [0.0, 2.0, 6.0, 10.0])
    survival = [interval.estimate for interval in intervals]
    assert survival == pytest.approx([1.0, 0.75, 0.5, 0.5])
    assert list(times) == [0.0, 2.0, 6.0, 10.0]


def test_reliability_curve_monotone_non_increasing():
    trajectories = [_trajectory(failures=[float(i)]) for i in range(1, 9)]
    _, intervals = reliability_curve(trajectories, [0.0, 2.5, 5.0, 7.5, 10.0])
    values = [interval.estimate for interval in intervals]
    assert all(b <= a for a, b in zip(values, values[1:]))


def _down_trajectory(intervals, horizon=10.0):
    trajectory = _trajectory(horizon=horizon)
    for start, end in intervals:
        trajectory.failure_times.append(start)
        trajectory.events.append(
            ComponentEvent(time=start, component="top", kind="system_failure")
        )
        if end is not None:
            trajectory.events.append(
                ComponentEvent(
                    time=end, component="top", kind="system_restored"
                )
            )
    return trajectory


def test_availability_curve_reconstructs_down_intervals():
    trajectories = [
        _down_trajectory([(2.0, 4.0)]),
        _down_trajectory([]),
    ]
    _, intervals = availability_curve(trajectories, [1.0, 3.0, 5.0])
    assert [i.estimate for i in intervals] == pytest.approx([1.0, 0.5, 1.0])


def test_availability_curve_absorbing_down_until_horizon():
    trajectories = [_down_trajectory([(2.0, None)])]
    _, intervals = availability_curve(trajectories, [1.0, 9.9])
    assert intervals[0].estimate == 1.0
    assert intervals[1].estimate == 0.0


def test_availability_curve_down_at_horizon_endpoint():
    """A trajectory that fails and is never restored is down at t=horizon.

    Regression test: the down interval of a never-restored failure used
    to be closed at the horizon, and the half-open membership test then
    counted the system as *up* at exactly t == horizon.
    """
    trajectories = [_down_trajectory([(2.0, None)])]
    _, intervals = availability_curve(trajectories, [9.9, 10.0])
    assert intervals[0].estimate == 0.0
    assert intervals[1].estimate == 0.0


def test_availability_curve_restored_exactly_at_horizon_is_up():
    # A genuine restoration at the horizon still counts as up there.
    trajectories = [_down_trajectory([(2.0, 10.0)])]
    _, intervals = availability_curve(trajectories, [5.0, 10.0])
    assert intervals[0].estimate == 0.0
    assert intervals[1].estimate == 1.0


def test_reliability_curve_inconsistent_horizons_rejected():
    trajectories = [_trajectory(horizon=10.0), _trajectory(horizon=20.0)]
    with pytest.raises(ValidationError):
        reliability_curve(trajectories, [1.0])


def test_availability_curve_inconsistent_horizons_rejected():
    trajectories = [
        _down_trajectory([], horizon=10.0),
        _down_trajectory([], horizon=20.0),
    ]
    with pytest.raises(ValidationError):
        availability_curve(trajectories, [1.0])


def test_availability_curve_needs_events():
    trajectory = _trajectory(failures=[1.0])  # failures but no events
    with pytest.raises(ValidationError):
        availability_curve([trajectory], [0.5])


def test_availability_curve_rejects_unrecorded_even_without_failures():
    """Regression: record_events=False must be rejected uniformly.

    A zero-failure trajectory simulated without event recording used to
    slip past the precondition check (which only inferred 'events
    missing' from failure_times being non-empty) and was silently
    counted as always-up alongside trajectories that *did* fail.
    """
    from repro.core.builder import FMTBuilder
    from repro.maintenance.strategy import MaintenanceStrategy
    from repro.simulation.montecarlo import MonteCarlo

    builder = FMTBuilder("noev")
    builder.basic_event("b", rate=1e-9)  # essentially never fails
    builder.or_gate("top", ["b"])
    tree = builder.build("top")
    result = MonteCarlo(
        tree, MaintenanceStrategy.none(), horizon=10.0, seed=1,
        record_events=False,
    ).run(5, keep_trajectories=True)
    assert all(t.n_failures == 0 for t in result.trajectories)
    with pytest.raises(ValidationError):
        availability_curve(result.trajectories, [5.0])


def test_availability_curve_rejects_batch_input():
    from repro.simulation.batch import TrajectoryBatch

    batch = TrajectoryBatch.from_trajectories([_trajectory()])
    with pytest.raises(ValidationError):
        availability_curve(batch, [5.0])


def test_availability_curve_from_simulation():
    from repro.core.builder import FMTBuilder
    from repro.maintenance.strategy import MaintenanceStrategy
    from repro.simulation.montecarlo import MonteCarlo

    builder = FMTBuilder("avail")
    builder.degraded_event("w", phases=1, mean=1.0, threshold=1)
    builder.or_gate("top", ["w"])
    tree = builder.build("top")
    strategy = MaintenanceStrategy(
        "s", on_system_failure="replace", system_repair_time=0.5
    )
    result = MonteCarlo(
        tree, strategy, horizon=30.0, seed=3, record_events=True
    ).run(300, keep_trajectories=True)
    _, intervals = availability_curve(result.trajectories, [20.0, 25.0])
    # Long-run availability of an up(1.0)/down(0.5) alternation ~ 2/3.
    for interval in intervals:
        assert interval.estimate == pytest.approx(2.0 / 3.0, abs=0.1)


def test_availability_curve_matches_per_point_reference_counts():
    """Regression: the searchsorted rank formulation must reproduce the
    per-grid-point interval-membership counts exactly (the Wilson
    intervals are a pure function of the integer counts)."""
    import numpy as np

    from repro.core.builder import FMTBuilder
    from repro.maintenance.strategy import MaintenanceStrategy
    from repro.simulation.montecarlo import MonteCarlo
    from repro.stats.confidence import wilson_interval

    builder = FMTBuilder("avail")
    builder.degraded_event("w", phases=2, mean=2.0, threshold=1)
    builder.or_gate("top", ["w"])
    tree = builder.build("top")
    strategy = MaintenanceStrategy(
        "s", on_system_failure="replace", system_repair_time=0.7
    )
    result = MonteCarlo(
        tree, strategy, horizon=20.0, seed=9, record_events=True
    ).run(200, keep_trajectories=True)
    grid = [0.0, 1.3, 4.9, 7.0, 13.37, 19.99, 20.0]
    _, intervals = availability_curve(result.trajectories, grid)

    # Reference: the historical O(grid * intervals) membership scan.
    starts, ends = [], []
    for trajectory in result.trajectories:
        down_since = None
        for event in trajectory.events:
            if event.kind == "system_failure" and down_since is None:
                down_since = event.time
            elif event.kind == "system_restored" and down_since is not None:
                starts.append(down_since)
                ends.append(event.time)
                down_since = None
        if down_since is not None:
            starts.append(down_since)
            ends.append(np.inf)
    start_arr = np.asarray(starts)
    end_arr = np.asarray(ends)
    n = len(result.trajectories)
    downs = []
    for t, interval in zip(grid, intervals):
        down = int(np.count_nonzero((start_arr <= t) & (t < end_arr)))
        downs.append(down)
        assert interval == wilson_interval(n - down, n, 0.95)
    assert max(downs) > 0  # the fixture exercises real downtime


def test_reliability_curve_grid_validation():
    with pytest.raises(ValidationError):
        reliability_curve([_trajectory()], [-1.0])
    with pytest.raises(ValidationError):
        reliability_curve([_trajectory()], [11.0])
    with pytest.raises(ValidationError):
        reliability_curve([], [1.0])
