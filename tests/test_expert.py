"""Expert judgment aggregation and quantile fitting."""

import pytest
from scipy import stats as sps

from repro.data.expert import (
    ExpertJudgment,
    aggregate_judgments,
    fit_erlang_to_quantiles,
)
from repro.errors import EstimationError


def _true_quantiles(shape, mean, levels=(0.05, 0.5, 0.95)):
    return {
        level: float(sps.gamma.ppf(level, a=shape, scale=mean / shape))
        for level in levels
    }


def test_judgment_validation_levels():
    with pytest.raises(EstimationError):
        ExpertJudgment("e", {1.5: 10.0})
    with pytest.raises(EstimationError):
        ExpertJudgment("e", {})


def test_judgment_validation_values():
    with pytest.raises(EstimationError):
        ExpertJudgment("e", {0.5: -1.0})


def test_judgment_validation_monotone():
    with pytest.raises(EstimationError):
        ExpertJudgment("e", {0.05: 10.0, 0.95: 5.0})


def test_judgment_validation_weight():
    with pytest.raises(EstimationError):
        ExpertJudgment("e", {0.5: 1.0}, weight=0.0)


def test_aggregate_equal_weights():
    a = ExpertJudgment("a", {0.5: 10.0})
    b = ExpertJudgment("b", {0.5: 20.0})
    assert aggregate_judgments([a, b]) == {0.5: 15.0}


def test_aggregate_weighted():
    a = ExpertJudgment("a", {0.5: 10.0}, weight=3.0)
    b = ExpertJudgment("b", {0.5: 20.0}, weight=1.0)
    assert aggregate_judgments([a, b])[0.5] == pytest.approx(12.5)


def test_aggregate_common_levels_only():
    a = ExpertJudgment("a", {0.05: 1.0, 0.5: 10.0})
    b = ExpertJudgment("b", {0.5: 20.0, 0.95: 40.0})
    assert set(aggregate_judgments([a, b])) == {0.5}


def test_aggregate_no_common_levels():
    a = ExpertJudgment("a", {0.05: 1.0})
    b = ExpertJudgment("b", {0.95: 40.0})
    with pytest.raises(EstimationError):
        aggregate_judgments([a, b])


def test_aggregate_empty():
    with pytest.raises(EstimationError):
        aggregate_judgments([])


@pytest.mark.parametrize("shape,mean", [(1, 5.0), (3, 12.0), (6, 40.0)])
def test_fit_recovers_exact_quantiles(shape, mean):
    quantiles = _true_quantiles(shape, mean)
    fit = fit_erlang_to_quantiles(quantiles)
    assert fit.shape == shape
    assert fit.mean() == pytest.approx(mean, rel=0.02)


def test_fit_robust_to_small_noise():
    quantiles = _true_quantiles(4, 8.0)
    noisy = {level: value * 1.03 for level, value in quantiles.items()}
    fit = fit_erlang_to_quantiles(noisy)
    assert fit.shape in (3, 4, 5)
    assert fit.mean() == pytest.approx(8.0, rel=0.15)


def test_fit_needs_two_quantiles():
    with pytest.raises(EstimationError):
        fit_erlang_to_quantiles({0.5: 10.0})


def test_fit_rejects_nonpositive_values():
    with pytest.raises(EstimationError):
        fit_erlang_to_quantiles({0.05: 0.0, 0.5: 1.0})
