"""Tests of the lockstep vectorized kernel and its differential oracle.

The vectorized kernel draws the same distributions as the object engine
in a different order, so the contract is distributional equivalence —
checked here by the differential harness (KS tests + CI overlap) on the
paper's model and on hypothesis-generated random trees — plus exact
bit-identity of the fallback path, which routes through the object
engine trajectory by trajectory.
"""

import io

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import FMTBuilder
from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_cost_model
from repro.eijoint.strategies import current_policy, unmaintained
from repro.errors import ValidationError
from repro.maintenance.actions import clean, replace
from repro.maintenance.costs import CostModel
from repro.maintenance.modules import InspectionModule, RepairModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation import compare_kernels
from repro.simulation.executor import FMTSimulator, SimulationConfig
from repro.simulation.montecarlo import MonteCarlo
from repro.simulation.parallel import simulate_batch_columns
from repro.simulation.vectorized import (
    iter_vectorized_batches,
    vectorized_fallback_reason,
)


def _simulator(tree, strategy, horizon=20.0, kernel="vectorized", costs=None):
    config = SimulationConfig(
        horizon=horizon,
        cost_model=costs if costs is not None else CostModel(),
        kernel=kernel,
    )
    return FMTSimulator(tree, strategy, config=config)


def _two_event_tree(gate="or"):
    builder = FMTBuilder("vec")
    builder.degraded_event("a", phases=3, mean=6.0, threshold=2)
    builder.degraded_event("b", phases=2, mean=9.0, threshold=1)
    getattr(builder, f"{gate}_gate")("top", ["a", "b"])
    return builder.build("top")


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------
def test_kernel_config_validation():
    with pytest.raises(ValidationError):
        SimulationConfig(horizon=10.0, kernel="warp")
    with pytest.raises(ValidationError):
        SimulationConfig(horizon=10.0, kernel="vectorized", record_events=True)


def test_montecarlo_kernel_argument():
    tree = _two_event_tree()
    mc = MonteCarlo(tree, MaintenanceStrategy.none(), horizon=10.0, seed=3,
                    kernel="vectorized")
    assert mc.simulator.config.kernel == "vectorized"
    result = mc.run(500)
    assert 0.0 <= result.summary.unreliability.estimate <= 1.0


def test_run_keep_trajectories_roundtrip():
    tree = _two_event_tree()
    mc = MonteCarlo(tree, MaintenanceStrategy.none(), horizon=10.0, seed=3,
                    kernel="vectorized")
    result = mc.run(300, keep_trajectories=True)
    assert len(result.trajectories) == 300
    assert all(t.events_recorded is False for t in result.trajectories)


# ----------------------------------------------------------------------
# Fallback classification
# ----------------------------------------------------------------------
def test_fallback_reason_none_for_plain_model():
    tree = _two_event_tree()
    assert vectorized_fallback_reason(
        _simulator(tree, MaintenanceStrategy.none())
    ) is None


def test_fallback_reason_none_for_ei_joint_policies():
    tree = build_ei_joint_fmt()
    for strategy in (unmaintained(), current_policy()):
        assert vectorized_fallback_reason(_simulator(tree, strategy)) is None


def test_fallback_reason_exponential_timing():
    tree = _two_event_tree()
    module = InspectionModule(
        "i", period=1.0, targets=["a"], action=clean(), timing="exponential"
    )
    strategy = MaintenanceStrategy("s", inspections=(module,))
    reason = vectorized_fallback_reason(_simulator(tree, strategy))
    assert reason is not None and "exponential" in reason


def test_fallback_reason_delayed_action():
    tree = _two_event_tree()
    module = InspectionModule(
        "i", period=1.0, targets=["a"], action=clean(), delay=0.25
    )
    strategy = MaintenanceStrategy("s", inspections=(module,))
    reason = vectorized_fallback_reason(_simulator(tree, strategy))
    assert reason is not None and "delayed" in reason


def test_fallback_reason_gate_trigger_rdep():
    builder = FMTBuilder("vec")
    builder.degraded_event("a", phases=3, mean=6.0, threshold=2)
    builder.degraded_event("b", phases=2, mean=9.0, threshold=1)
    builder.degraded_event("c", phases=2, mean=9.0, threshold=1)
    builder.or_gate("sub", ["a", "b"])
    builder.or_gate("top", ["sub", "c"])
    builder.rdep("r", trigger="sub", targets=["c"], factor=2.0)
    tree = builder.build("top")
    reason = vectorized_fallback_reason(
        _simulator(tree, MaintenanceStrategy.none())
    )
    assert reason is not None and "gate" in reason


def test_fallback_reason_chained_rdep():
    builder = FMTBuilder("vec")
    builder.degraded_event("a", phases=2, mean=4.0, threshold=1)
    builder.degraded_event("b", phases=2, mean=6.0, threshold=1)
    builder.degraded_event("c", phases=2, mean=8.0, threshold=1)
    builder.or_gate("top", ["a", "b", "c"])
    builder.rdep("r1", trigger="a", targets=["b"], factor=2.0)
    builder.rdep("r2", trigger="b", targets=["c"], factor=2.0)
    tree = builder.build("top")
    reason = vectorized_fallback_reason(
        _simulator(tree, MaintenanceStrategy.none())
    )
    assert reason is not None and "chained" in reason.lower()


def test_fallback_reason_pand_gate_child():
    builder = FMTBuilder("vec")
    builder.degraded_event("a", phases=2, mean=4.0, threshold=1)
    builder.degraded_event("b", phases=2, mean=6.0, threshold=1)
    builder.degraded_event("c", phases=2, mean=8.0, threshold=1)
    builder.or_gate("sub", ["a", "b"])
    builder.pand_gate("top", ["sub", "c"])
    tree = builder.build("top")
    reason = vectorized_fallback_reason(
        _simulator(tree, MaintenanceStrategy.none())
    )
    assert reason is not None and "PAND" in reason


# ----------------------------------------------------------------------
# Fallback path: bit-identical to the object engine
# ----------------------------------------------------------------------
def test_fallback_path_bit_identical_to_object_engine():
    tree = _two_event_tree()
    module = InspectionModule(
        "i", period=1.0, targets=["a", "b"], action=clean(),
        timing="exponential",
    )
    strategy = MaintenanceStrategy("s", inspections=(module,))
    costs = CostModel(inspection_visit=30.0, downtime_per_year=1000.0)
    seeds = np.random.SeedSequence(42).spawn(300)

    assert vectorized_fallback_reason(
        _simulator(tree, strategy, costs=costs)
    ) is not None
    via_object = simulate_batch_columns(
        _simulator(tree, strategy, kernel="object", costs=costs), seeds
    )
    via_vectorized = simulate_batch_columns(
        _simulator(tree, strategy, kernel="vectorized", costs=costs), seeds
    )

    np.testing.assert_array_equal(
        via_object.failure_times, via_vectorized.failure_times
    )
    np.testing.assert_array_equal(
        via_object.failure_offsets, via_vectorized.failure_offsets
    )
    np.testing.assert_array_equal(via_object.downtime, via_vectorized.downtime)
    for field in via_object.costs:
        np.testing.assert_array_equal(
            via_object.costs[field], via_vectorized.costs[field]
        )
    np.testing.assert_array_equal(
        via_object.n_inspections, via_vectorized.n_inspections
    )


def test_iter_vectorized_batches_covers_all_seeds():
    tree = _two_event_tree()
    seeds = np.random.SeedSequence(5).spawn(1000)
    sim = _simulator(tree, MaintenanceStrategy.none())
    total = sum(
        len(chunk)
        for chunk in iter_vectorized_batches(sim, seeds, chunk_size=256)
    )
    assert total == 1000


# ----------------------------------------------------------------------
# Distributional equivalence on the paper's model
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strategy_factory", [unmaintained, current_policy])
def test_ei_joint_differential(strategy_factory):
    report = compare_kernels(
        build_ei_joint_fmt(),
        strategy_factory(),
        horizon=30.0,
        cost_model=default_cost_model(),
        n_runs=1500,
        seed=19,
        alpha=1e-4,
    )
    assert report.fallback_reason is None
    assert report.passed, report.describe()


def test_pand_composition_matches_object_engine():
    """Exact-composition PAND: order-respecting failures only."""
    builder = FMTBuilder("vec")
    builder.degraded_event("first", phases=2, mean=3.0, threshold=1)
    builder.degraded_event("second", phases=3, mean=5.0, threshold=2)
    builder.pand_gate("top", ["first", "second"])
    tree = builder.build("top")
    report = compare_kernels(
        tree,
        MaintenanceStrategy.none(),
        horizon=25.0,
        n_runs=1500,
        seed=23,
        alpha=1e-4,
    )
    assert report.fallback_reason is None
    assert report.passed, report.describe()


def test_rdep_acceleration_matches_object_engine():
    builder = FMTBuilder("vec")
    builder.degraded_event("trig", phases=2, mean=4.0, threshold=1)
    builder.degraded_event("dep", phases=3, mean=10.0, threshold=2)
    builder.or_gate("top", ["trig", "dep"])
    builder.rdep("r", trigger="trig", targets=["dep"], factor=3.0)
    tree = builder.build("top")
    module = InspectionModule(
        "i", period=2.0, targets=["trig", "dep"], action=clean()
    )
    strategy = MaintenanceStrategy(
        "s", inspections=(module,), on_system_failure="replace",
        system_repair_time=0.1,
    )
    report = compare_kernels(
        tree,
        strategy,
        horizon=25.0,
        cost_model=CostModel(
            inspection_visit=10.0,
            system_failure=500.0,
            downtime_per_year=2000.0,
        ),
        n_runs=1500,
        seed=29,
        alpha=1e-4,
    )
    assert report.fallback_reason is None
    assert report.passed, report.describe()


# ----------------------------------------------------------------------
# Property: random small trees agree across kernels
# ----------------------------------------------------------------------
@given(
    gate=st.sampled_from(["or", "and", "pand", "vot"]),
    phases_a=st.integers(min_value=1, max_value=4),
    phases_b=st.integers(min_value=2, max_value=4),
    mean_a=st.floats(min_value=2.0, max_value=12.0),
    mean_b=st.floats(min_value=2.0, max_value=12.0),
    with_rdep=st.booleans(),
    with_inspection=st.booleans(),
    period=st.floats(min_value=0.5, max_value=3.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=10, deadline=None)
def test_random_tree_kernel_equivalence(
    gate, phases_a, phases_b, mean_a, mean_b, with_rdep, with_inspection,
    period, seed,
):
    builder = FMTBuilder("prop")
    builder.degraded_event("a", phases=phases_a, mean=mean_a,
                           threshold=max(1, phases_a - 1))
    builder.degraded_event("b", phases=phases_b, mean=mean_b,
                           threshold=max(1, phases_b - 1))
    builder.degraded_event("c", phases=2, mean=8.0, threshold=1)
    if gate == "vot":
        builder.voting_gate("top", 2, ["a", "b", "c"])
    else:
        getattr(builder, f"{gate}_gate")("top", ["a", "b", "c"])
    if with_rdep:
        builder.rdep("r", trigger="a", targets=["c"], factor=2.5)
    tree = builder.build("top")
    modules = ()
    if with_inspection:
        modules = (
            InspectionModule("i", period=period, targets=["b", "c"],
                             action=clean()),
        )
    strategy = MaintenanceStrategy(
        "s", inspections=modules, on_system_failure="replace",
        system_repair_time=0.05,
    )
    def differential(n_runs, seed):
        return compare_kernels(
            tree,
            strategy,
            horizon=20.0,
            cost_model=CostModel(system_failure=100.0,
                                 downtime_per_year=1000.0),
            n_runs=n_runs,
            seed=seed,
            alpha=1e-5,
        )

    report = differential(600, seed)
    assert report.fallback_reason is None
    if not report.passed:
        # The CI-overlap leg is a binary check on two independent 95%
        # intervals, so a correct kernel still trips it now and then at
        # n=600.  Escalate the sample size before declaring bias: a
        # real discrepancy only gets more significant with more runs.
        report = differential(6000, seed + 1)
        assert report.passed, report.describe()


def test_repair_module_matches_object_engine():
    tree = _two_event_tree()
    module = RepairModule("renew", period=5.0, targets=["a", "b"],
                          action=replace())
    strategy = MaintenanceStrategy("s", repairs=(module,))
    report = compare_kernels(
        tree,
        strategy,
        horizon=30.0,
        cost_model=CostModel(
            action_costs={"replace": 200.0}, downtime_per_year=500.0
        ),
        n_runs=1500,
        seed=31,
        alpha=1e-4,
    )
    assert report.fallback_reason is None
    assert report.passed, report.describe()
