"""Every active deprecation shim warns and still works.

The deprecation policy (docs/api.md, "API stability & deprecation")
keeps replaced surfaces behind shims for at least one release; this
module pins each shim's warning *and* its behaviour, so a shim cannot
silently rot before its removal release.
"""

import warnings

import pytest

from repro.simulation.engine import Engine, ScheduledEvent


# ----------------------------------------------------------------------
# ScheduledEvent ordering (tentpole: tuple-keyed event calendar)
# ----------------------------------------------------------------------
def test_scheduled_event_ordering_warns_and_orders():
    engine = Engine()
    early = engine.schedule(1.0, lambda: None, priority=0)
    late = engine.schedule(2.0, lambda: None, priority=0)
    with pytest.warns(DeprecationWarning, match="ScheduledEvent ordering"):
        assert early < late
    with pytest.warns(DeprecationWarning):
        assert not (late < early)


def test_scheduled_event_ordering_ties_break_by_priority_then_seq():
    engine = Engine()
    first = engine.schedule(1.0, lambda: None, priority=1)
    second = engine.schedule(1.0, lambda: None, priority=0)
    third = engine.schedule(1.0, lambda: None, priority=1)
    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        assert second < first  # lower priority value wins
        assert first < third  # same priority: insertion order wins


def test_engine_hot_path_emits_no_deprecation_warnings():
    """The engine itself never trips its own shim."""
    engine = Engine()
    fired = []
    engine.schedule(2.0, lambda: fired.append(2))
    engine.schedule(1.0, lambda: fired.append(1))
    engine.schedule(1.0, lambda: fired.append(0), priority=-1)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        engine.run_until(10.0)
    assert fired == [0, 1, 2]


# ----------------------------------------------------------------------
# repro.experiments.EXPERIMENTS (api_redesign: experiment registry)
# ----------------------------------------------------------------------
def test_experiments_dict_warns_and_matches_registry():
    import repro.experiments as experiments
    from repro.experiments.registry import iter_experiments

    with pytest.warns(DeprecationWarning, match="repro.experiments.EXPERIMENTS"):
        legacy = experiments.EXPERIMENTS
    assert legacy == dict(iter_experiments())
    assert list(legacy)[0] == "table1"


def test_experiments_unknown_attribute_still_raises():
    import repro.experiments as experiments

    with pytest.raises(AttributeError):
        experiments.NOT_A_REAL_NAME


# ----------------------------------------------------------------------
# Shims must not leak into ordinary library use
# ----------------------------------------------------------------------
def test_simulation_stack_is_warning_free():
    import numpy as np

    from repro.eijoint import build_ei_joint_fmt, current_policy
    from repro.simulation.executor import FMTSimulator

    simulator = FMTSimulator(build_ei_joint_fmt(), current_policy(), horizon=10.0)
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        simulator.simulate(np.random.default_rng(3))
        simulator.clone().simulate(np.random.default_rng(3))


# ----------------------------------------------------------------------
# CLI options before the command (api_redesign: argparse subparsers)
# ----------------------------------------------------------------------
def test_cli_leading_options_warn_and_rotate(capsys):
    from repro.cli import main

    with pytest.warns(DeprecationWarning, match="before the command"):
        assert main(["--quick", "table1"]) == 0
    assert "ferrous_dust" in capsys.readouterr().out


def test_cli_command_first_is_warning_free(capsys):
    from repro.cli import main

    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        assert main(["table1", "--quick"]) == 0
    capsys.readouterr()
