"""Inspection and repair modules: validation and serialization."""

import pytest

from repro.errors import ValidationError
from repro.maintenance.actions import clean, replace
from repro.maintenance.modules import InspectionModule, RepairModule


def test_inspection_defaults():
    module = InspectionModule("m", period=0.5, targets=["a"])
    assert module.action.kind == "replace"
    assert module.offset == 0.5
    assert module.delay == 0.0
    assert module.detect_failures
    assert module.timing == "periodic"


def test_inspection_frequency():
    assert InspectionModule("m", period=0.25, targets=["a"]).frequency == 4.0


def test_inspection_custom_offset():
    module = InspectionModule("m", period=1.0, targets=["a"], offset=0.1)
    assert module.offset == 0.1


def test_inspection_zero_offset_allowed():
    assert InspectionModule("m", period=1.0, targets=["a"], offset=0.0).offset == 0.0


def test_period_must_be_positive():
    with pytest.raises(ValidationError):
        InspectionModule("m", period=0.0, targets=["a"])
    with pytest.raises(ValidationError):
        RepairModule("m", period=-1.0, targets=["a"])


def test_targets_required():
    with pytest.raises(ValidationError):
        InspectionModule("m", period=1.0, targets=[])


def test_duplicate_targets_rejected():
    with pytest.raises(ValidationError):
        RepairModule("m", period=1.0, targets=["a", "a"])


def test_negative_delay_rejected():
    with pytest.raises(ValidationError):
        InspectionModule("m", period=1.0, targets=["a"], delay=-0.5)


def test_invalid_timing_rejected():
    with pytest.raises(ValidationError):
        InspectionModule("m", period=1.0, targets=["a"], timing="weekly")
    with pytest.raises(ValidationError):
        RepairModule("m", period=1.0, targets=["a"], timing="weekly")


def test_exponential_timing_accepted():
    module = InspectionModule(
        "m", period=1.0, targets=["a"], timing="exponential"
    )
    assert module.timing == "exponential"


def test_inspection_dict_round_trip():
    module = InspectionModule(
        "m",
        period=0.25,
        targets=["a", "b"],
        action=clean(restore_phases=1),
        delay=0.1,
        offset=0.05,
        detect_failures=False,
        timing="exponential",
    )
    clone = InspectionModule.from_dict(module.to_dict())
    assert clone.to_dict() == module.to_dict()


def test_repair_dict_round_trip():
    module = RepairModule(
        "m", period=10.0, targets=["a"], action=replace(), offset=5.0
    )
    clone = RepairModule.from_dict(module.to_dict())
    assert clone.to_dict() == module.to_dict()


def test_repair_defaults():
    module = RepairModule("m", period=10.0, targets=["a"])
    assert module.action.kind == "replace"
    assert module.offset == 10.0


def test_reprs():
    assert "period=0.25" in repr(
        InspectionModule("m", period=0.25, targets=["a"])
    )
    assert "replace" in repr(RepairModule("r", period=5.0, targets=["a"]))
