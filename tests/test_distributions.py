"""Lifetime distributions: moments, CDFs, sampling, serialization."""

import math

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.stats.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    LogNormal,
    Uniform,
    Weibull,
    distribution_from_dict,
)

ALL_DISTRIBUTIONS = [
    Exponential(rate=0.5),
    Erlang(shape=3, rate=1.5),
    Weibull(scale=4.0, shape=2.0),
    Deterministic(value=2.5),
    Uniform(low=1.0, high=3.0),
    LogNormal(mu=0.5, sigma=0.4),
]


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.kind)
def test_cdf_is_monotone_and_bounded(dist):
    previous = 0.0
    for t in np.linspace(0.0, 20.0, 50):
        value = dist.cdf(float(t))
        assert 0.0 <= value <= 1.0
        assert value >= previous - 1e-12
        previous = value


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.kind)
def test_cdf_zero_at_origin(dist):
    assert dist.cdf(0.0) == pytest.approx(0.0, abs=1e-12)
    assert dist.cdf(-1.0) == 0.0


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.kind)
def test_survival_complements_cdf(dist):
    for t in (0.5, 1.0, 5.0):
        assert dist.survival(t) == pytest.approx(1.0 - dist.cdf(t))


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.kind)
def test_sample_mean_matches_analytic_mean(dist, rng):
    samples = dist.sample(rng, size=40_000)
    assert np.mean(samples) == pytest.approx(dist.mean(), rel=0.05)


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.kind)
def test_dict_round_trip(dist):
    clone = distribution_from_dict(dist.to_dict())
    assert clone == dist


@pytest.mark.parametrize("dist", ALL_DISTRIBUTIONS, ids=lambda d: d.kind)
def test_scalar_sample(dist, rng):
    value = dist.sample(rng)
    assert np.isscalar(value) or np.ndim(value) == 0
    assert value >= 0.0


def test_exponential_mean_inverse_rate():
    assert Exponential(rate=4.0).mean() == pytest.approx(0.25)


def test_exponential_from_mean():
    assert Exponential.from_mean(5.0).rate == pytest.approx(0.2)


def test_exponential_cdf_closed_form():
    dist = Exponential(rate=2.0)
    assert dist.cdf(1.0) == pytest.approx(1.0 - math.exp(-2.0))


def test_exponential_hazard_integral():
    dist = Exponential(rate=2.0)
    assert dist.hazard_integral(3.0) == pytest.approx(6.0)


def test_erlang_mean_and_variance():
    dist = Erlang(shape=4, rate=2.0)
    assert dist.mean() == pytest.approx(2.0)
    assert dist.variance() == pytest.approx(1.0)


def test_erlang_from_mean():
    dist = Erlang.from_mean(shape=5, mean=10.0)
    assert dist.mean() == pytest.approx(10.0)
    assert dist.rate == pytest.approx(0.5)


def test_erlang_shape_one_equals_exponential():
    erlang = Erlang(shape=1, rate=0.7)
    exponential = Exponential(rate=0.7)
    for t in (0.1, 1.0, 4.0):
        assert erlang.cdf(t) == pytest.approx(exponential.cdf(t))


def test_erlang_cdf_against_scipy():
    from scipy import stats as sps

    dist = Erlang(shape=3, rate=1.2)
    for t in (0.5, 2.0, 6.0):
        expected = sps.gamma.cdf(t, a=3, scale=1.0 / 1.2)
        assert dist.cdf(t) == pytest.approx(expected, rel=1e-9)


def test_weibull_shape_one_equals_exponential():
    weibull = Weibull(scale=2.0, shape=1.0)
    exponential = Exponential(rate=0.5)
    for t in (0.2, 1.0, 3.0):
        assert weibull.cdf(t) == pytest.approx(exponential.cdf(t))


def test_deterministic_cdf_is_step():
    dist = Deterministic(value=2.0)
    assert dist.cdf(1.999) == 0.0
    assert dist.cdf(2.0) == 1.0


def test_deterministic_sampling_constant(rng):
    dist = Deterministic(value=1.5)
    assert np.all(dist.sample(rng, size=10) == 1.5)


def test_uniform_mean():
    assert Uniform(low=1.0, high=3.0).mean() == pytest.approx(2.0)


def test_lognormal_mean():
    dist = LogNormal(mu=0.0, sigma=1.0)
    assert dist.mean() == pytest.approx(math.exp(0.5))


@pytest.mark.parametrize(
    "factory",
    [
        lambda: Exponential(rate=0.0),
        lambda: Exponential(rate=-1.0),
        lambda: Exponential(rate=math.inf),
        lambda: Erlang(shape=0, rate=1.0),
        lambda: Erlang(shape=2.5, rate=1.0),
        lambda: Erlang(shape=2, rate=-1.0),
        lambda: Weibull(scale=0.0, shape=1.0),
        lambda: Weibull(scale=1.0, shape=0.0),
        lambda: Deterministic(value=-1.0),
        lambda: Uniform(low=3.0, high=1.0),
        lambda: Uniform(low=-1.0, high=1.0),
        lambda: LogNormal(mu=0.0, sigma=0.0),
    ],
)
def test_invalid_parameters_rejected(factory):
    with pytest.raises(ValidationError):
        factory()


def test_from_dict_unknown_kind():
    with pytest.raises(ValidationError):
        distribution_from_dict({"kind": "gamma", "rate": 1.0})


def test_from_dict_missing_kind():
    with pytest.raises(ValidationError):
        distribution_from_dict({"rate": 1.0})
