"""Sensitivity (tornado) analysis."""

import pytest

from repro.analysis.sensitivity import (
    SensitivityEntry,
    kpi_cost,
    kpi_enf,
    kpi_unreliability,
    tornado,
)
from repro.core.builder import FMTBuilder
from repro.errors import ValidationError
from repro.maintenance.strategy import MaintenanceStrategy


def _factory(name: str, multiplier: float):
    means = {"fast": 2.0, "slow": 50.0}
    means[name] *= multiplier
    builder = FMTBuilder("sens")
    builder.degraded_event("fast", phases=2, mean=means["fast"])
    builder.degraded_event("slow", phases=2, mean=means["slow"])
    builder.or_gate("top", ["fast", "slow"])
    return builder.build("top")


def test_entry_swing():
    entry = SensitivityEntry("x", baseline=1.0, low_value=0.8, high_value=1.3)
    assert entry.swing == pytest.approx(0.5)
    assert entry.relative_swing == pytest.approx(0.5)


def test_entry_relative_swing_zero_baseline():
    entry = SensitivityEntry("x", baseline=0.0, low_value=0.1, high_value=0.2)
    assert entry.relative_swing == float("inf")


def test_tornado_ranks_dominant_parameter_first():
    entries = tornado(
        _factory,
        parameters=["fast", "slow"],
        strategy=MaintenanceStrategy.none(),
        kpi=kpi_enf,
        horizon=30.0,
        n_runs=300,
        seed=7,
    )
    assert [entry.parameter for entry in entries][0] == "fast"
    assert entries[0].swing > entries[1].swing


def test_tornado_direction_for_competing_failures():
    """Longer mean lifetime of the dominant mode must lower the ENF."""
    entries = tornado(
        _factory,
        parameters=["fast"],
        strategy=MaintenanceStrategy.none(),
        kpi=kpi_enf,
        factor=2.0,
        horizon=30.0,
        n_runs=300,
        seed=7,
    )
    entry = entries[0]
    assert entry.low_value > entry.baseline > entry.high_value


def test_tornado_validation():
    with pytest.raises(ValidationError):
        tornado(_factory, ["fast"], MaintenanceStrategy.none(), factor=1.0)
    with pytest.raises(ValidationError):
        tornado(_factory, [], MaintenanceStrategy.none())


def test_kpi_extractors():
    from repro.simulation.montecarlo import MonteCarlo

    result = MonteCarlo(
        _factory("fast", 1.0), MaintenanceStrategy.none(), horizon=10.0, seed=1
    ).run(100)
    assert kpi_enf(result) == result.failures_per_year.estimate
    assert kpi_cost(result) == result.cost_per_year.estimate
    assert kpi_unreliability(result) == result.unreliability.estimate
