"""Exact periodic-inspection analysis vs the simulator.

This is the deterministic-timing counterpart of the CTMC
cross-validation: the simulator's periodic inspection semantics are
checked against closed (matrix-exponential) computations.
"""

import math

import numpy as np
import pytest

from repro.analysis.periodic import (
    PeriodicInspectionModel,
    expected_failures,
    unreliability,
)
from repro.core.builder import FMTBuilder
from repro.core.events import BasicEvent
from repro.errors import AnalysisError, UnsupportedModelError
from repro.maintenance.actions import clean, repair
from repro.maintenance.modules import InspectionModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.montecarlo import MonteCarlo


def _event(phases=3, mean=3.0, threshold=2):
    return BasicEvent.erlang("w", phases=phases, mean=mean, threshold=threshold)


def _module(period=0.5, action=None, detection_probability=1.0, offset=None):
    return InspectionModule(
        "i",
        period=period,
        targets=["w"],
        action=action if action is not None else clean(),
        detection_probability=detection_probability,
        offset=offset,
    )


def _tree(event):
    builder = FMTBuilder("single")
    builder.add_event(event)
    builder.or_gate("top", ["w"])
    return builder.build("top")


# ----------------------------------------------------------------------
# Sanity against closed forms (no inspection influence)
# ----------------------------------------------------------------------
def test_before_first_inspection_matches_lifetime_cdf():
    event = _event()
    module = _module(period=100.0)  # first inspection at t=100
    for t in (0.5, 1.5, 3.0):
        assert unreliability(event, module, t) == pytest.approx(
            event.lifetime_cdf(t), abs=1e-10
        )


def test_useless_threshold_inspection_changes_nothing():
    """With threshold == phases the last phase is detectable, so the
    inspection does help; with a restore that maps to the same phase
    (repair of 0 phases is invalid) we instead test detection
    probability ~ 0 via an offset beyond the horizon."""
    event = _event()
    module = _module(period=1.0, offset=50.0)
    t = 5.0
    assert unreliability(event, module, t) == pytest.approx(
        event.lifetime_cdf(t), abs=1e-10
    )


def test_renewal_without_inspections_matches_renewal_function():
    """Erlang(2) renewal process: m(t) = t/2 - 1/4 + e^{-2t}/4 for
    per-phase rate 1."""
    event = BasicEvent.erlang("w", phases=2, rate=1.0, threshold=2)
    module = _module(period=1000.0)  # inspections beyond horizon
    t = 10.0
    expected = t / 2.0 - 0.25 + math.exp(-2.0 * t) / 4.0
    assert expected_failures(event, module, t) == pytest.approx(
        expected, rel=1e-9
    )


# ----------------------------------------------------------------------
# Structural behaviour
# ----------------------------------------------------------------------
def test_inspections_reduce_unreliability_monotonically_in_frequency():
    event = _event()
    t = 10.0
    values = [
        unreliability(event, _module(period=period), t)
        for period in (4.0, 2.0, 1.0, 0.5, 0.25)
    ]
    assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))
    # Frequent inspection removes a substantial share of failures, but
    # the 1-phase detection window caps what any frequency can prevent.
    assert values[-1] < 0.5 * event.lifetime_cdf(t)


def test_detection_probability_interpolates():
    event = _event()
    t = 10.0
    perfect = unreliability(event, _module(detection_probability=1.0), t)
    imperfect = unreliability(event, _module(detection_probability=0.5), t)
    nothing = event.lifetime_cdf(t)
    assert perfect < imperfect < nothing


def test_partial_restoration_weaker_than_full():
    event = BasicEvent.erlang("w", phases=5, mean=5.0, threshold=2)
    t = 20.0
    full = unreliability(event, _module(action=clean()), t)
    partial = unreliability(
        event, _module(action=repair(restore_phases=1)), t
    )
    assert full < partial


def test_unreliability_monotone_in_time():
    event = _event()
    module = _module()
    previous = 0.0
    for t in np.linspace(0.0, 12.0, 25):
        value = unreliability(event, module, float(t))
        assert value >= previous - 1e-12
        previous = value


# ----------------------------------------------------------------------
# Cross-validation against the simulator (periodic timing!)
# ----------------------------------------------------------------------
def test_simulator_matches_exact_unreliability():
    event = _event(phases=4, mean=4.0, threshold=2)
    module = _module(period=0.75)
    exact = unreliability(event, module, 8.0)
    strategy = MaintenanceStrategy(
        "s", inspections=(module,), on_system_failure="none"
    )
    sim = MonteCarlo(_tree(event), strategy, horizon=8.0, seed=31).run(
        8000, confidence=0.999
    )
    assert sim.unreliability.contains(exact)


def test_simulator_matches_exact_unreliability_imperfect_detection():
    event = _event(phases=3, mean=3.0, threshold=1)
    module = _module(period=0.5, detection_probability=0.6)
    exact = unreliability(event, module, 6.0)
    strategy = MaintenanceStrategy(
        "s", inspections=(module,), on_system_failure="none"
    )
    sim = MonteCarlo(_tree(event), strategy, horizon=6.0, seed=33).run(
        8000, confidence=0.999
    )
    assert sim.unreliability.contains(exact)


def test_simulator_matches_exact_expected_failures():
    event = _event(phases=3, mean=2.0, threshold=2)
    module = _module(period=0.5)
    exact = expected_failures(event, module, 10.0)
    strategy = MaintenanceStrategy(
        "s",
        inspections=(module,),
        on_system_failure="replace",
        system_repair_time=0.0,
    )
    sim = MonteCarlo(_tree(event), strategy, horizon=10.0, seed=37).run(
        8000, confidence=0.999
    )
    assert sim.summary.expected_failures.contains(exact)


def test_simulator_matches_exact_with_offset():
    event = _event(phases=3, mean=3.0, threshold=2)
    module = _module(period=1.0, offset=0.25)
    exact = unreliability(event, module, 5.0)
    strategy = MaintenanceStrategy(
        "s", inspections=(module,), on_system_failure="none"
    )
    sim = MonteCarlo(_tree(event), strategy, horizon=5.0, seed=41).run(
        8000, confidence=0.999
    )
    assert sim.unreliability.contains(exact)


# ----------------------------------------------------------------------
# Validation of inputs
# ----------------------------------------------------------------------
def test_rejects_delay():
    event = _event()
    module = InspectionModule(
        "i", period=1.0, targets=["w"], action=clean(), delay=0.1
    )
    with pytest.raises(UnsupportedModelError):
        PeriodicInspectionModel(event, module)


def test_rejects_exponential_timing():
    event = _event()
    module = InspectionModule(
        "i", period=1.0, targets=["w"], action=clean(), timing="exponential"
    )
    with pytest.raises(UnsupportedModelError):
        PeriodicInspectionModel(event, module)


def test_rejects_mismatched_targets():
    event = _event()
    module = InspectionModule(
        "i", period=1.0, targets=["other"], action=clean()
    )
    with pytest.raises(UnsupportedModelError):
        PeriodicInspectionModel(event, module)


def test_rejects_thresholdless_event():
    event = BasicEvent.erlang("w", phases=3, mean=3.0)
    module = InspectionModule("i", period=1.0, targets=["w"], action=clean())
    with pytest.raises(UnsupportedModelError):
        PeriodicInspectionModel(event, module)


def test_mode_queries_guarded():
    event = _event()
    module = _module()
    absorbing = PeriodicInspectionModel(event, module)
    with pytest.raises(AnalysisError):
        absorbing.expected_failures(1.0)
    renewing = PeriodicInspectionModel(event, module, renew_on_failure=True)
    with pytest.raises(AnalysisError):
        renewing.unreliability(1.0)


def test_phase_distribution_sums_to_one():
    event = _event()
    module = _module()
    model = PeriodicInspectionModel(event, module, renew_on_failure=True)
    for t in (0.3, 1.7, 6.0):
        assert model.phase_distribution(t).sum() == pytest.approx(1.0)
