"""Builder: declaration order independence, reference resolution."""

import pytest

from repro.core.builder import FMTBuilder
from repro.core.gates import InhibitGate, PandGate, VotingGate
from repro.errors import ModelError, ValidationError


def test_children_can_be_declared_after_gate():
    builder = FMTBuilder("t")
    builder.or_gate("top", ["a", "b"])
    builder.basic_event("a", rate=1.0)
    builder.basic_event("b", rate=1.0)
    tree = builder.build("top")
    assert set(tree.basic_events) == {"a", "b"}


def test_nested_gates_resolve():
    builder = FMTBuilder("t")
    builder.or_gate("top", ["mid"])
    builder.and_gate("mid", ["a", "b"])
    builder.basic_event("a", rate=1.0)
    builder.basic_event("b", rate=1.0)
    tree = builder.build("top")
    assert tree.depth() == 2


def test_duplicate_declaration_rejected():
    builder = FMTBuilder("t")
    builder.basic_event("a", rate=1.0)
    with pytest.raises(ModelError):
        builder.basic_event("a", rate=2.0)
    with pytest.raises(ModelError):
        builder.or_gate("a", ["x"])


def test_undeclared_reference_rejected():
    builder = FMTBuilder("t")
    builder.or_gate("top", ["ghost"])
    with pytest.raises(ModelError):
        builder.build("top")


def test_unknown_top_rejected():
    builder = FMTBuilder("t")
    builder.basic_event("a", rate=1.0)
    with pytest.raises(ModelError):
        builder.build("nope")


def test_cyclic_definition_rejected():
    builder = FMTBuilder("t")
    builder.or_gate("x", ["y"])
    builder.or_gate("y", ["x"])
    with pytest.raises(ModelError):
        builder.build("x")


def test_self_cycle_rejected():
    builder = FMTBuilder("t")
    builder.or_gate("x", ["x"])
    with pytest.raises(ModelError):
        builder.build("x")


def test_unreachable_elements_rejected():
    builder = FMTBuilder("t")
    builder.basic_event("a", rate=1.0)
    builder.basic_event("orphan", rate=1.0)
    builder.or_gate("top", ["a"])
    with pytest.raises(ModelError) as excinfo:
        builder.build("top")
    assert "orphan" in str(excinfo.value)


def test_empty_gate_rejected():
    builder = FMTBuilder("t")
    with pytest.raises(ValidationError):
        builder.or_gate("g", [])


def test_voting_gate_built():
    builder = FMTBuilder("t")
    for name in ("a", "b", "c"):
        builder.basic_event(name, rate=1.0)
    builder.voting_gate("top", 2, ["a", "b", "c"])
    tree = builder.build("top")
    assert isinstance(tree.top, VotingGate)
    assert tree.top.k == 2


def test_pand_gate_built():
    builder = FMTBuilder("t")
    builder.basic_event("a", rate=1.0)
    builder.basic_event("b", rate=1.0)
    builder.pand_gate("top", ["a", "b"])
    assert isinstance(builder.build("top").top, PandGate)


def test_inhibit_gate_built_with_condition_first():
    builder = FMTBuilder("t")
    for name in ("cond", "x", "y"):
        builder.basic_event(name, rate=1.0)
    builder.inhibit_gate("top", "cond", ["x", "y"])
    tree = builder.build("top")
    assert isinstance(tree.top, InhibitGate)
    assert tree.top.condition.name == "cond"


def test_rdep_attached():
    builder = FMTBuilder("t")
    builder.basic_event("a", rate=1.0)
    builder.basic_event("b", rate=1.0)
    builder.or_gate("top", ["a", "b"])
    builder.rdep("dep", trigger="a", targets=["b"], factor=2.0)
    tree = builder.build("top")
    assert len(tree.dependencies) == 1
    assert tree.dependencies[0].trigger == "a"


def test_maintenance_attached():
    builder = FMTBuilder("t")
    builder.degraded_event("w", phases=3, mean=5.0, threshold=2)
    builder.or_gate("top", ["w"])
    builder.inspection("insp", period=0.5, targets=["w"])
    builder.repair_module("renew", period=10.0, targets=["w"])
    tree = builder.build("top")
    assert len(tree.inspections) == 1
    assert len(tree.repairs) == 1


def test_declared_names_sorted():
    builder = FMTBuilder("t")
    builder.basic_event("b", rate=1.0)
    builder.basic_event("a", rate=1.0)
    builder.or_gate("top", ["a", "b"])
    assert builder.declared_names == ["a", "b", "top"]


def test_builder_returns_self_for_chaining():
    builder = FMTBuilder("t")
    result = builder.basic_event("a", rate=1.0).or_gate("top", ["a"])
    assert result is builder
    assert builder.build("top").top.name == "top"
