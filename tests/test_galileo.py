"""Extended Galileo format: parsing, serialization, round-trips."""

import pytest

from repro.core.gates import InhibitGate, PandGate, VotingGate
from repro.dsl import dumps, load_file, loads, save_file
from repro.errors import ParseError


BASIC_MODEL = """
// a small model
toplevel "top";
"top" or "a" "b";
"a" lambda=0.5;
"b" phases=3 rate=1.0 threshold=2;
"""


def test_parse_basic_model():
    tree = loads(BASIC_MODEL)
    assert tree.top.name == "top"
    assert tree.basic_events["a"].phases == 1
    assert tree.basic_events["b"].threshold == 2


def test_parse_unquoted_names():
    tree = loads("toplevel top; top and a b; a lambda=1; b lambda=2;")
    assert set(tree.basic_events) == {"a", "b"}


def test_parse_mean_instead_of_rate():
    tree = loads('toplevel t; t or e; e phases=4 mean=8;')
    assert tree.basic_events["e"].mean_lifetime() == pytest.approx(8.0)


def test_parse_unequal_phase_rates():
    tree = loads("toplevel t; t or e; e rates=0.5,0.2,0.1 threshold=2;")
    event = tree.basic_events["e"]
    assert event.phase_rates == (0.5, 0.2, 0.1)
    assert event.threshold == 2


def test_unequal_rates_round_trip():
    tree = loads("toplevel t; t or e; e rates=0.5,0.2,0.1;")
    assert loads(dumps(tree)).basic_events["e"].phase_rates == (0.5, 0.2, 0.1)


def test_rates_conflicts_with_phases():
    with pytest.raises(ParseError):
        loads("toplevel t; t or e; e rates=0.5,0.2 phases=2;")


def test_parse_voting_gate():
    tree = loads(
        "toplevel t; t 2of3 a b c; a lambda=1; b lambda=1; c lambda=1;"
    )
    assert isinstance(tree.top, VotingGate)
    assert tree.top.k == 2


def test_voting_arity_mismatch_rejected():
    with pytest.raises(ParseError):
        loads("toplevel t; t 2of3 a b; a lambda=1; b lambda=1;")


def test_parse_pand_and_inhibit():
    tree = loads(
        "toplevel t; t or p i;"
        "p pand a b; i inhibit c d;"
        "a lambda=1; b lambda=1; c lambda=1; d lambda=1;"
    )
    assert isinstance(tree.element("p"), PandGate)
    assert isinstance(tree.element("i"), InhibitGate)


def test_parse_rdep():
    tree = loads(
        "toplevel t; t or a b; a lambda=1; b lambda=1;"
        "rdep d trigger=a factor=2.5 targets=b;"
    )
    dep = tree.dependencies[0]
    assert dep.trigger == "a"
    assert dep.factor == 2.5


def test_parse_inspection_and_repair():
    tree = loads(
        "toplevel t; t or w; w phases=3 mean=6 threshold=2;"
        "inspection i period=0.25 targets=w action=clean delay=0.1;"
        "repair r period=10 targets=w action=replace;"
    )
    assert tree.inspections[0].period == 0.25
    assert tree.inspections[0].action.kind == "clean"
    assert tree.inspections[0].delay == 0.1
    assert tree.repairs[0].period == 10.0


def test_parse_description_with_spaces():
    tree = loads('toplevel t; t or e; e lambda=1 desc="two words";')
    assert tree.basic_events["e"].description == "two words"


def test_comments_ignored():
    text = (
        "// leading comment\n"
        "toplevel t; # trailing style\n"
        "t or a; // gate comment\n"
        "a lambda=1;\n"
    )
    assert loads(text).top.name == "t"


def test_multiline_statement():
    text = "toplevel t;\nt or\n  a\n  b;\na lambda=1; b lambda=1;"
    assert len(loads(text).top.children) == 2


def test_missing_toplevel_rejected():
    with pytest.raises(ParseError):
        loads("a lambda=1;")


def test_duplicate_toplevel_rejected():
    with pytest.raises(ParseError):
        loads("toplevel a; toplevel b; a lambda=1; b lambda=1;")


def test_unterminated_statement_rejected():
    with pytest.raises(ParseError):
        loads("toplevel t; t or a; a lambda=1")


def test_unknown_key_rejected():
    with pytest.raises(ParseError):
        loads("toplevel t; t or a; a lambda=1 color=red;")


def test_lambda_and_phases_conflict():
    with pytest.raises(ParseError):
        loads("toplevel t; t or a; a lambda=1 phases=2;")


def test_rate_and_mean_conflict():
    with pytest.raises(ParseError):
        loads("toplevel t; t or a; a phases=2 rate=1 mean=2;")


def test_bad_number_reports_line():
    with pytest.raises(ParseError) as excinfo:
        loads("toplevel t;\nt or a;\na lambda=banana;")
    assert "line 3" in str(excinfo.value)


def test_parse_error_from_builder_reports_line():
    with pytest.raises(ParseError):
        loads("toplevel t; t or ghost;")


def test_round_trip_preserves_semantics(layered_tree):
    clone = loads(dumps(layered_tree))
    for failed in [set(), {"a", "b"}, {"c", "d"}, {"b", "c"}]:
        assert clone.evaluate(failed) == layered_tree.evaluate(failed)


def test_round_trip_fixed_point(maintained_tree, inspection_strategy):
    tree = inspection_strategy.apply(maintained_tree)
    text = dumps(tree)
    assert dumps(loads(text)) == text


def test_eijoint_round_trip():
    from repro.eijoint import build_ei_joint_fmt, current_policy

    tree = current_policy().apply(build_ei_joint_fmt())
    clone = loads(dumps(tree))
    assert clone.to_dict() == tree.to_dict()


def test_file_round_trip(tmp_path, layered_tree):
    path = tmp_path / "model.fmt"
    save_file(layered_tree, path)
    clone = load_file(path)
    assert clone.name == "model"
    assert set(clone.basic_events) == set(layered_tree.basic_events)
