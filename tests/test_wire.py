"""The JSON wire schema: round trips, versioning, malformed payloads.

The contract under test (docs/service.md): any study request encoded
to the wire, parsed back, and re-submitted must address the *same*
cache entry — i.e. the round trip preserves the
:class:`~repro.studies.key.StudyKey` digest exactly.  Hypothesis
drives the round-trip property over random trees, strategies and cost
models; the rejection tests pin the error behavior for unknown schema
versions and malformed envelopes.
"""

from __future__ import annotations

import json
import math

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.builder import FMTBuilder
from repro.core.tree import FaultMaintenanceTree
from repro.maintenance.actions import clean, repair, replace
from repro.maintenance.costs import CostBreakdown, CostModel
from repro.maintenance.modules import InspectionModule, RepairModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.service.wire import (
    WIRE_SCHEMA_VERSION,
    WireError,
    decode_wire,
    dumps,
    encode_wire,
    loads,
    summary_from_dict,
    summary_to_dict,
)
from repro.studies.runner import StudyRequest

# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------

_ACTIONS = st.sampled_from([None, clean(), repair(2), replace()])


@st.composite
def trees(draw) -> FaultMaintenanceTree:
    """A small random maintained fault tree."""
    n = draw(st.integers(min_value=2, max_value=4))
    builder = FMTBuilder(draw(st.sampled_from(["m1", "m2", "joint"])))
    names = []
    for i in range(n):
        name = f"e{i}"
        phases = draw(st.integers(min_value=1, max_value=4))
        threshold = (
            draw(st.integers(min_value=1, max_value=phases - 1))
            if phases > 1 and draw(st.booleans())
            else None
        )
        builder.degraded_event(
            name,
            phases=phases,
            mean=draw(st.floats(min_value=0.5, max_value=30.0)),
            threshold=threshold,
        )
        names.append(name)
    kind = draw(st.sampled_from(["and", "or", "vot"]))
    if kind == "and":
        builder.and_gate("top", names)
    elif kind == "or":
        builder.or_gate("top", names)
    else:
        builder.voting_gate(
            "top", draw(st.integers(min_value=1, max_value=n)), names
        )
    return builder.build("top")


@st.composite
def strategies_for(draw, tree: FaultMaintenanceTree) -> MaintenanceStrategy:
    """A random maintenance strategy whose targets exist in ``tree``."""
    inspectable = sorted(
        event.name
        for event in tree.basic_events.values()
        if event.threshold is not None
    )
    modules = []
    if inspectable and draw(st.booleans()):
        modules.append(
            InspectionModule(
                "insp",
                period=draw(st.floats(min_value=0.25, max_value=5.0)),
                targets=inspectable,
                action=draw(_ACTIONS),
                delay=draw(st.floats(min_value=0.0, max_value=0.5)),
                detection_probability=draw(
                    st.floats(min_value=0.5, max_value=1.0)
                ),
            )
        )
    repairs = []
    if draw(st.booleans()):
        repairs.append(
            RepairModule(
                "renew",
                period=draw(st.floats(min_value=1.0, max_value=10.0)),
                targets=sorted(tree.basic_events),
            )
        )
    return MaintenanceStrategy(
        name=tree.name,
        inspections=tuple(modules),
        repairs=tuple(repairs),
        on_system_failure=draw(st.sampled_from(["replace", "none"])),
        system_repair_time=draw(st.floats(min_value=0.0, max_value=0.2)),
    )


@st.composite
def cost_models(draw) -> CostModel:
    money = st.floats(min_value=0.0, max_value=1e4)
    return CostModel(
        inspection_visit=draw(money),
        action_costs={"replace": draw(money), "clean": draw(money)},
        event_action_costs=(
            {("e0", "replace"): draw(money)} if draw(st.booleans()) else {}
        ),
        system_failure=draw(money),
        corrective_factor=draw(st.floats(min_value=1.0, max_value=3.0)),
        downtime_per_year=draw(money),
        discount_rate=draw(st.floats(min_value=0.0, max_value=0.1)),
    )


@st.composite
def study_requests(draw) -> StudyRequest:
    tree = draw(trees())
    return StudyRequest(
        tree=tree,
        strategy=draw(st.one_of(st.none(), strategies_for(tree))),
        horizon=draw(st.floats(min_value=1.0, max_value=50.0)),
        cost_model=draw(st.one_of(st.none(), cost_models())),
        seed=draw(st.integers(min_value=0, max_value=2**31)),
        n_runs=draw(st.integers(min_value=1, max_value=500)),
        record_events=draw(st.booleans()),
        kernel=draw(st.sampled_from(["object", "vectorized"])),
    )


# ----------------------------------------------------------------------
# Round-trip properties
# ----------------------------------------------------------------------


@settings(max_examples=40, deadline=None)
@given(study_requests())
def test_request_roundtrip_preserves_study_key(request):
    """wire → JSON text → wire must address the same cache entry."""
    text = dumps(request)
    decoded = loads(text, expect="study_request")
    assert decoded.key().digest == request.key().digest
    # And the re-encoding is byte-identical (canonical JSON).
    assert dumps(decoded) == text


@settings(max_examples=25, deadline=None)
@given(trees())
def test_tree_roundtrip(tree):
    decoded = loads(dumps(tree), expect="tree")
    assert decoded.to_dict() == tree.to_dict()


@settings(max_examples=25, deadline=None)
@given(trees().flatmap(lambda t: strategies_for(t)))
def test_strategy_roundtrip(strategy):
    decoded = loads(dumps(strategy), expect="strategy")
    assert decoded.to_dict() == strategy.to_dict()


@settings(max_examples=25, deadline=None)
@given(cost_models())
def test_cost_model_roundtrip(model):
    decoded = loads(dumps(model), expect="cost_model")
    assert decoded.to_dict() == model.to_dict()


def test_summary_wire_roundtrip(simple_or_tree):
    from repro.studies.runner import StudyRunner

    runner = StudyRunner()
    try:
        summary = runner.summary(
            StudyRequest(
                tree=simple_or_tree,
                strategy=MaintenanceStrategy.none(),
                horizon=5.0,
                seed=3,
                n_runs=1,  # degenerate CIs: ±inf half-widths
            )
        )
    finally:
        runner.close()
    text = dumps(summary)
    assert "Infinity" in text or math.isfinite(summary.unreliability.lower)
    decoded = loads(text, expect="kpi_summary")
    assert summary_to_dict(decoded) == summary_to_dict(summary)
    assert decoded.unreliability.estimate == summary.unreliability.estimate
    # Strict JSON throughout: the text parses with parse_constant
    # forbidden (no bare NaN/Infinity tokens).
    json.loads(text, parse_constant=lambda s: pytest.fail(f"bare {s}"))


def test_summary_dict_roundtrip_direct(simple_or_tree):
    from repro.studies.runner import StudyRunner

    runner = StudyRunner()
    try:
        summary = runner.summary(
            StudyRequest(
                tree=simple_or_tree,
                strategy=MaintenanceStrategy.none(),
                horizon=5.0,
                seed=3,
                n_runs=50,
                cost_model=CostModel(system_failure=100.0),
            )
        )
    finally:
        runner.close()
    again = summary_from_dict(summary_to_dict(summary))
    assert summary_to_dict(again) == summary_to_dict(summary)
    assert isinstance(again.cost_breakdown_per_year, CostBreakdown)


# ----------------------------------------------------------------------
# Envelope validation
# ----------------------------------------------------------------------


def _envelope(simple_or_tree) -> dict:
    return encode_wire(
        StudyRequest(tree=simple_or_tree, horizon=2.0, n_runs=5)
    )


def test_unknown_schema_version_rejected(simple_or_tree):
    envelope = _envelope(simple_or_tree)
    envelope["schema_version"] = WIRE_SCHEMA_VERSION + 1
    with pytest.raises(WireError, match="schema_version"):
        decode_wire(envelope)


@pytest.mark.parametrize(
    "version", ["1", 1.5, None, -1, 0], ids=["str", "float", "none", "neg", "zero"]
)
def test_non_integer_or_out_of_range_version_rejected(simple_or_tree, version):
    envelope = _envelope(simple_or_tree)
    envelope["schema_version"] = version
    with pytest.raises(WireError):
        decode_wire(envelope)


def test_unknown_kind_rejected(simple_or_tree):
    envelope = _envelope(simple_or_tree)
    envelope["kind"] = "banana"
    with pytest.raises(WireError, match="kind"):
        decode_wire(envelope)


def test_expect_mismatch_rejected(simple_or_tree):
    envelope = encode_wire(simple_or_tree)
    with pytest.raises(WireError, match="expected"):
        decode_wire(envelope, expect="study_request")


@pytest.mark.parametrize(
    "payload",
    [
        {},
        {"tree": None},
        {"tree": {"name": "x"}},
        {"tree": 42},
        "not-a-dict",
        [],
    ],
)
def test_malformed_payloads_rejected(payload):
    envelope = {
        "schema_version": WIRE_SCHEMA_VERSION,
        "kind": "study_request",
        "payload": payload,
    }
    with pytest.raises(WireError):
        decode_wire(envelope)


def test_non_dict_envelope_rejected():
    for bad in (None, [], "x", 7):
        with pytest.raises(WireError):
            decode_wire(bad)


def test_missing_envelope_fields_rejected(simple_or_tree):
    envelope = _envelope(simple_or_tree)
    for field in ("schema_version", "kind", "payload"):
        broken = dict(envelope)
        del broken[field]
        with pytest.raises(WireError, match=field):
            decode_wire(broken)


def test_older_versions_accepted(simple_or_tree):
    # Compatibility policy: the service accepts every version it has
    # ever emitted.  Version 1 is the oldest, so this is currently the
    # identity case — the pin exists so a future bump keeps the branch.
    envelope = _envelope(simple_or_tree)
    envelope["schema_version"] = 1
    assert decode_wire(envelope).key().digest is not None


def test_encode_unknown_object_raises():
    with pytest.raises(WireError, match="no wire codec"):
        encode_wire(object())


def test_dumps_is_canonical(simple_or_tree):
    request = StudyRequest(tree=simple_or_tree, horizon=2.0, n_runs=5)
    assert dumps(request) == dumps(request)
    assert ": " not in dumps(request)  # compact separators
