"""Tree rendering: ASCII outline and Graphviz DOT."""

from repro.core.visualize import ascii_tree, to_dot
from repro.eijoint import build_ei_joint_fmt, current_policy


def test_ascii_contains_all_elements(layered_tree):
    text = ascii_tree(layered_tree)
    for name in layered_tree.nodes:
        assert name in text


def test_ascii_marks_gate_kinds(layered_tree):
    text = ascii_tree(layered_tree)
    assert "[AND]" in text
    assert "[OR]" in text
    assert "[2/3]" in text


def test_ascii_shared_subtree_printed_once():
    from repro.core.builder import FMTBuilder

    builder = FMTBuilder("shared")
    builder.basic_event("s", rate=1.0)
    builder.basic_event("x", rate=1.0)
    builder.basic_event("y", rate=1.0)
    builder.and_gate("left", ["s", "x"])
    builder.and_gate("right", ["s", "y"])
    builder.or_gate("top", ["left", "right"])
    text = ascii_tree(builder.build("top"))
    assert text.count("(shared, see above)") == 1


def test_ascii_lists_dependencies_and_modules():
    tree = current_policy().apply(build_ei_joint_fmt())
    text = ascii_tree(tree)
    assert "RDEP" in text
    assert "INSPECT inspect_clean" in text


def test_ascii_event_labels(maintained_tree):
    text = ascii_tree(maintained_tree)
    assert "phases=4" in text
    assert "threshold=2" in text


def test_dot_is_well_formed(layered_tree):
    dot = to_dot(layered_tree)
    assert dot.startswith('digraph "layered" {')
    assert dot.rstrip().endswith("}")
    # One edge per gate-child relation.
    assert dot.count("->") == sum(
        len(g.children) for g in layered_tree.gates.values()
    )


def test_dot_gate_and_event_shapes(layered_tree):
    dot = to_dot(layered_tree)
    assert "shape=box" in dot
    assert "shape=circle" in dot


def test_dot_rdep_rendered(maintained_tree):
    dot = to_dot(maintained_tree)
    assert "style=dashed" in dot
    assert 'label="x5"' in dot


def test_dot_modules_rendered():
    tree = current_policy().apply(build_ei_joint_fmt())
    dot = to_dot(tree)
    assert "shape=note" in dot
    assert "style=dotted" in dot


def test_dot_each_node_declared_once(layered_tree):
    dot = to_dot(layered_tree)
    for name in layered_tree.nodes:
        assert dot.count(f'"{name}" [') == 1
