"""Running statistics and sequential stopping rules."""

import math

import numpy as np
import pytest

from repro.stats.sequential import RelativePrecisionRule, RunningStatistics


def test_running_mean_matches_numpy(rng):
    values = rng.normal(size=500)
    stats = RunningStatistics()
    stats.extend(values)
    assert stats.mean == pytest.approx(float(np.mean(values)))
    assert stats.variance == pytest.approx(float(np.var(values, ddof=1)))


def test_running_count():
    stats = RunningStatistics()
    stats.extend([1.0, 2.0, 3.0])
    assert stats.count == 3


def test_variance_with_fewer_than_two_samples():
    stats = RunningStatistics()
    assert stats.variance == 0.0
    stats.add(5.0)
    assert stats.variance == 0.0


def test_std_error_empty_is_inf():
    assert RunningStatistics().std_error == math.inf


def test_confidence_interval_unbounded_until_two_samples():
    stats = RunningStatistics()
    stats.add(1.0)
    interval = stats.confidence_interval()
    assert interval.lower == -math.inf


def test_confidence_interval_matches_direct_computation(rng):
    from repro.stats.confidence import mean_confidence_interval

    values = list(rng.normal(size=100))
    stats = RunningStatistics()
    stats.extend(values)
    direct = mean_confidence_interval(values)
    online = stats.confidence_interval()
    assert online.lower == pytest.approx(direct.lower)
    assert online.upper == pytest.approx(direct.upper)


def test_merge_equivalent_to_sequential(rng):
    values = rng.normal(size=200)
    left = RunningStatistics()
    left.extend(values[:80])
    right = RunningStatistics()
    right.extend(values[80:])
    left.merge(right)
    combined = RunningStatistics()
    combined.extend(values)
    assert left.count == combined.count
    assert left.mean == pytest.approx(combined.mean)
    assert left.variance == pytest.approx(combined.variance)


def test_merge_with_empty_is_identity(rng):
    stats = RunningStatistics()
    stats.extend(rng.normal(size=10))
    before = (stats.count, stats.mean, stats.variance)
    stats.merge(RunningStatistics())
    assert (stats.count, stats.mean, stats.variance) == before


def test_merge_into_empty(rng):
    values = rng.normal(size=10)
    other = RunningStatistics()
    other.extend(values)
    stats = RunningStatistics()
    stats.merge(other)
    assert stats.count == 10
    assert stats.mean == pytest.approx(float(np.mean(values)))


def test_rule_does_not_stop_before_min_samples():
    rule = RelativePrecisionRule(min_samples=100)
    stats = RunningStatistics()
    stats.extend([1.0] * 50)
    assert not rule.should_stop(stats)


def test_rule_stops_on_tight_interval():
    rule = RelativePrecisionRule(relative_error=0.05, min_samples=10)
    stats = RunningStatistics()
    stats.extend([1.0] * 200)  # zero variance -> zero width
    assert rule.should_stop(stats)


def test_rule_stops_at_max_samples():
    rule = RelativePrecisionRule(
        relative_error=1e-9, min_samples=10, max_samples=50
    )
    stats = RunningStatistics()
    stats.extend([0.0, 1.0] * 25)
    assert rule.should_stop(stats)


def test_rule_keeps_going_on_wide_interval(rng):
    rule = RelativePrecisionRule(relative_error=0.001, min_samples=10)
    stats = RunningStatistics()
    stats.extend(rng.normal(loc=1.0, scale=5.0, size=20))
    assert not rule.should_stop(stats)


def test_rule_validation():
    with pytest.raises(ValueError):
        RelativePrecisionRule(relative_error=0.0)
    with pytest.raises(ValueError):
        RelativePrecisionRule(min_samples=1)
    with pytest.raises(ValueError):
        RelativePrecisionRule(min_samples=100, max_samples=10)
