"""Monte Carlo driver: reproducibility, stopping, result surface."""

import pytest

from repro.errors import ValidationError
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.montecarlo import MonteCarlo
from repro.stats.sequential import RelativePrecisionRule


def _mc(tree, strategy=None, **kw):
    return MonteCarlo(tree, strategy or MaintenanceStrategy.none(), **kw)


def test_same_seed_reproduces_results(maintained_tree):
    first = _mc(maintained_tree, horizon=30.0, seed=7).run(50)
    second = _mc(maintained_tree, horizon=30.0, seed=7).run(50)
    assert (
        first.summary.expected_failures.estimate
        == second.summary.expected_failures.estimate
    )
    assert first.unreliability.estimate == second.unreliability.estimate


def test_different_seeds_differ(maintained_tree):
    first = _mc(maintained_tree, horizon=30.0, seed=1).run(50)
    second = _mc(maintained_tree, horizon=30.0, seed=2).run(50)
    assert (
        first.summary.expected_failures.estimate
        != second.summary.expected_failures.estimate
    )


def test_batching_invariance(maintained_tree):
    """Two batches of 25 equal one batch of 50 under the same seed."""
    whole = _mc(maintained_tree, horizon=30.0, seed=9)
    split = _mc(maintained_tree, horizon=30.0, seed=9)
    all_at_once = whole.sample(50)
    in_parts = split.sample(25) + split.sample(25)
    assert [t.n_failures for t in all_at_once] == [
        t.n_failures for t in in_parts
    ]


def test_run_requires_positive_count(maintained_tree):
    with pytest.raises(ValidationError):
        _mc(maintained_tree, horizon=10.0).run(0)


def test_result_properties(maintained_tree, inspection_strategy):
    result = _mc(
        maintained_tree, inspection_strategy, horizon=20.0, seed=3
    ).run(100)
    assert result.n_runs == 100
    assert 0.0 <= result.unreliability.estimate <= 1.0
    assert 0.0 <= result.reliability <= 1.0
    assert result.failures_per_year.estimate >= 0.0
    assert 0.0 <= result.availability.estimate <= 1.0
    assert result.cost_per_year.estimate == 0.0  # no cost model given


def test_reliability_at_requires_raw_material(maintained_tree):
    # A result stripped of both the object list and the batch (e.g. a
    # summary deserialized on its own) cannot produce a curve.
    from repro.simulation.montecarlo import MonteCarloResult

    summary = _mc(maintained_tree, horizon=20.0).run(5).summary
    bare = MonteCarloResult(summary=summary)
    with pytest.raises(ValidationError):
        bare.reliability_at([1.0])


def test_reliability_at_works_from_streamed_batch(maintained_tree):
    kept = _mc(maintained_tree, horizon=20.0, seed=4).run(
        60, keep_trajectories=True
    )
    streamed = _mc(maintained_tree, horizon=20.0, seed=4).run(60)
    assert streamed.trajectories is None
    assert streamed.batch is not None
    grid = [0.0, 5.0, 10.0, 20.0]
    _, from_objects = kept.reliability_at(grid)
    _, from_batch = streamed.reliability_at(grid)
    assert from_objects == from_batch


def test_reliability_at_with_kept_trajectories(maintained_tree):
    result = _mc(maintained_tree, horizon=20.0, seed=4).run(
        200, keep_trajectories=True
    )
    times, intervals = result.reliability_at([0.0, 10.0, 20.0])
    assert intervals[0].estimate == 1.0
    assert intervals[2].estimate <= intervals[1].estimate


def test_run_to_precision_stops(maintained_tree):
    rule = RelativePrecisionRule(
        relative_error=0.25, min_samples=50, max_samples=2000
    )
    result = _mc(maintained_tree, horizon=50.0, seed=5).run_to_precision(
        rule, batch_size=50
    )
    assert 50 <= result.n_runs <= 2000
    interval = result.summary.expected_failures
    assert (
        interval.relative_half_width <= 0.25 or result.n_runs == 2000
    )


def test_run_to_precision_respects_max_samples(maintained_tree):
    rule = RelativePrecisionRule(
        relative_error=1e-12, min_samples=50, max_samples=100
    )
    result = _mc(maintained_tree, horizon=5.0, seed=6).run_to_precision(
        rule, batch_size=50
    )
    assert result.n_runs == 100


def test_run_to_precision_unreliability_target(maintained_tree):
    rule = RelativePrecisionRule(
        relative_error=0.3, min_samples=50, max_samples=1000
    )
    result = _mc(maintained_tree, horizon=30.0, seed=8).run_to_precision(
        rule, batch_size=50, target="unreliability"
    )
    assert 50 <= result.n_runs <= 1000


def test_run_to_precision_cost_target(maintained_tree):
    from repro.maintenance.costs import CostModel

    mc = MonteCarlo(
        maintained_tree,
        MaintenanceStrategy.none(),
        horizon=30.0,
        cost_model=CostModel(system_failure=100.0),
        seed=9,
    )
    rule = RelativePrecisionRule(
        relative_error=0.3, min_samples=50, max_samples=1000
    )
    result = mc.run_to_precision(rule, batch_size=50, target="cost")
    assert result.cost_per_year.estimate > 0.0


def test_run_to_precision_all_zero_stream_stops_with_warning(simple_and_tree):
    # A horizon so short that no failure is ever observed: the relative
    # precision rule can never trigger, so the all-zero cap must.
    rule = RelativePrecisionRule(
        relative_error=0.1, min_samples=50, max_samples=1_000_000
    )
    mc = _mc(simple_and_tree, horizon=1e-9, seed=2)
    with pytest.warns(RuntimeWarning, match="all-zero|zero on all"):
        result = mc.run_to_precision(
            rule, batch_size=100, max_zero_samples=300
        )
    assert 300 <= result.n_runs <= 400
    assert result.summary.expected_failures.estimate == 0.0
    assert result.summary.expected_failures.upper > 0.0


def test_run_to_precision_rejects_bad_zero_cap(maintained_tree):
    with pytest.raises(ValidationError):
        _mc(maintained_tree).run_to_precision(max_zero_samples=0)


def test_run_to_precision_unknown_target(maintained_tree):
    with pytest.raises(ValidationError):
        _mc(maintained_tree, horizon=5.0).run_to_precision(target="banana")


def test_run_to_precision_rejects_bad_batch(maintained_tree):
    with pytest.raises(ValidationError):
        _mc(maintained_tree, horizon=5.0).run_to_precision(batch_size=0)


def test_horizon_property(maintained_tree):
    assert _mc(maintained_tree, horizon=12.5).horizon == 12.5
