"""Parameter estimation: MLE fits, Poisson CIs, lifetime reconstruction."""

import numpy as np
import pytest

from repro.data.estimation import (
    LifetimeSample,
    erlang_log_likelihood,
    estimate_failure_rate,
    fit_erlang,
    fit_erlang_censored,
    fit_exponential,
    fit_weibull,
    lifetimes_from_database,
    poisson_rate_interval,
)
from repro.data.incidents import IncidentDatabase, IncidentRecord
from repro.errors import EstimationError
from repro.stats.distributions import Erlang, Exponential, Weibull


def test_exponential_mle_complete_data(rng):
    true = Exponential(rate=0.5)
    sample = LifetimeSample(tuple(true.sample(rng, 5000)))
    fit = fit_exponential(sample)
    assert fit.rate == pytest.approx(0.5, rel=0.05)


def test_exponential_mle_with_censoring(rng):
    """Censoring at a fixed time must not bias the exposure estimator."""
    true = Exponential(rate=0.5)
    lifetimes = true.sample(rng, 5000)
    cutoff = 1.0
    observed = tuple(t for t in lifetimes if t <= cutoff)
    censored = tuple(cutoff for t in lifetimes if t > cutoff)
    fit = fit_exponential(LifetimeSample(observed, censored))
    assert fit.rate == pytest.approx(0.5, rel=0.07)


def test_exponential_requires_observations():
    with pytest.raises(EstimationError):
        fit_exponential(LifetimeSample((), (1.0, 2.0)))


def test_lifetime_sample_rejects_negative():
    with pytest.raises(EstimationError):
        LifetimeSample((-1.0,))


def test_erlang_recovers_shape_and_rate(rng):
    true = Erlang(shape=4, rate=0.5)
    fit = fit_erlang(true.sample(rng, 4000))
    assert fit.shape == 4
    assert fit.rate == pytest.approx(0.5, rel=0.1)


def test_erlang_shape_one_for_exponential_data(rng):
    true = Exponential(rate=1.0)
    fit = fit_erlang(true.sample(rng, 4000))
    assert fit.shape == 1


def test_erlang_needs_two_samples():
    with pytest.raises(EstimationError):
        fit_erlang([1.0])


def test_erlang_rejects_nonpositive_samples():
    with pytest.raises(EstimationError):
        fit_erlang([1.0, -2.0])


def test_erlang_log_likelihood_prefers_truth(rng):
    true = Erlang(shape=3, rate=1.0)
    samples = true.sample(rng, 2000)
    at_truth = erlang_log_likelihood(samples, 3, 1.0)
    elsewhere = erlang_log_likelihood(samples, 1, 1.0 / 3.0)
    assert at_truth > elsewhere


def test_erlang_censored_recovers_rate(rng):
    true = Erlang(shape=2, rate=2.0 / 150.0)  # mean 150
    lifetimes = true.sample(rng, 20_000)
    window = 10.0
    observed = tuple(t for t in lifetimes if t <= window)
    censored = tuple(window for t in lifetimes if t > window)
    fit = fit_erlang_censored(
        LifetimeSample(observed, censored), shape=2
    )
    assert fit.mean() == pytest.approx(150.0, rel=0.25)


def test_erlang_censored_requires_failures():
    with pytest.raises(EstimationError):
        fit_erlang_censored(LifetimeSample((), (10.0,)), shape=2)


def test_weibull_recovers_parameters(rng):
    true = Weibull(scale=5.0, shape=2.0)
    fit = fit_weibull(true.sample(rng, 4000))
    assert fit.scale == pytest.approx(5.0, rel=0.1)
    assert fit.shape == pytest.approx(2.0, rel=0.1)


def test_weibull_needs_two_samples():
    with pytest.raises(EstimationError):
        fit_weibull([1.0])


def test_poisson_interval_contains_rate():
    interval = poisson_rate_interval(20, 1000.0)
    assert interval.estimate == pytest.approx(0.02)
    assert interval.lower < 0.02 < interval.upper


def test_poisson_interval_zero_count():
    interval = poisson_rate_interval(0, 100.0)
    assert interval.estimate == 0.0
    assert interval.lower == 0.0
    assert interval.upper > 0.0


def test_poisson_interval_coverage(rng):
    rate, exposure = 0.05, 400.0
    hits = 0
    for _ in range(300):
        count = rng.poisson(rate * exposure)
        if poisson_rate_interval(int(count), exposure).contains(rate):
            hits += 1
    assert hits / 300 > 0.88


def test_poisson_interval_validation():
    with pytest.raises(EstimationError):
        poisson_rate_interval(-1, 10.0)
    with pytest.raises(EstimationError):
        poisson_rate_interval(1, 0.0)


def _db(records, n_joints=1, window=10.0):
    return IncidentDatabase(records, n_joints=n_joints, window=window)


def test_estimate_failure_rate_from_database():
    records = [
        IncidentRecord(0, 1.0, "top", "system_failure"),
        IncidentRecord(0, 5.0, "top", "system_failure"),
    ]
    interval = estimate_failure_rate(_db(records), kind="system_failure")
    assert interval.estimate == pytest.approx(0.2)


def test_lifetimes_simple_failure():
    records = [IncidentRecord(0, 3.0, "w", "failure")]
    sample = lifetimes_from_database(_db(records), "w")
    assert sample.observed == (3.0,)
    assert sample.censored == ()


def test_lifetimes_censored_when_no_failure():
    sample = lifetimes_from_database(_db([]), "w")
    assert sample.observed == ()
    assert sample.censored == (10.0,)


def test_lifetimes_restart_after_system_renewal():
    records = [
        IncidentRecord(0, 2.0, "w", "failure"),
        IncidentRecord(0, 2.0, "top", "system_failure"),
        IncidentRecord(0, 2.0, "top", "system_restored"),
        IncidentRecord(0, 7.0, "w", "failure"),
        IncidentRecord(0, 7.0, "top", "system_failure"),
        IncidentRecord(0, 7.0, "top", "system_restored"),
    ]
    sample = lifetimes_from_database(_db(records), "w")
    assert sample.observed == (2.0, 5.0)
    assert sample.censored == (3.0,)


def test_lifetimes_window_tainted_by_partial_restoration():
    records = [
        IncidentRecord(0, 1.0, "w", "clean"),
        IncidentRecord(0, 4.0, "w", "failure"),
    ]
    # Joint 1 contributes a clean censored window; joint 0's cleaned
    # window must not produce a (biased) observation.
    sample = lifetimes_from_database(_db(records, n_joints=2), "w")
    assert sample.observed == ()
    assert sample.censored == (10.0,)


def test_lifetimes_nothing_usable_raises():
    records = [
        IncidentRecord(0, 1.0, "w", "clean"),
        IncidentRecord(0, 4.0, "w", "failure"),
    ]
    with pytest.raises(EstimationError):
        lifetimes_from_database(_db(records), "w")


def test_lifetimes_replace_restarts_window():
    records = [
        IncidentRecord(0, 2.0, "w", "replace"),
        IncidentRecord(0, 6.0, "w", "failure"),
    ]
    sample = lifetimes_from_database(_db(records), "w")
    assert sample.observed == (4.0,)


def test_lifetimes_other_components_ignored():
    records = [
        IncidentRecord(0, 1.0, "v", "clean"),
        IncidentRecord(0, 4.0, "w", "failure"),
    ]
    sample = lifetimes_from_database(_db(records), "w")
    assert sample.observed == (4.0,)


def test_lifetimes_round_trip_with_simulator(maintained_tree):
    """Lifetimes reconstructed from a corrective-only fleet must match
    the component's true mean."""
    from repro.data.incidents import generate_incident_database
    from repro.maintenance.strategy import MaintenanceStrategy

    db = generate_incident_database(
        maintained_tree.without_dependencies(),
        MaintenanceStrategy.none(),
        n_joints=300,
        window=40.0,
        seed=11,
    )
    sample = lifetimes_from_database(db, "wear")
    fit = fit_erlang_censored(sample, shape=4)
    assert fit.mean() == pytest.approx(8.0, rel=0.15)
