"""The calibration pipeline (repro.eijoint.calibration)."""

import numpy as np
import pytest

from repro.data.incidents import generate_incident_database
from repro.eijoint.calibration import (
    ModeFit,
    refit_parameters,
    simulate_expert_interviews,
)
from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import current_policy


@pytest.fixture(scope="module")
def database():
    truth = default_parameters()
    return generate_incident_database(
        build_ei_joint_fmt(truth),
        current_policy(truth),
        n_joints=800,
        window=10.0,
        seed=13,
    )


def test_interviews_are_monotone_and_noisy():
    mode = default_parameters().by_name["ferrous_dust"]
    rng = np.random.default_rng(1)
    judgments = simulate_expert_interviews(mode, rng)
    assert len(judgments) == 3
    for judgment in judgments:
        values = [judgment.quantiles[l] for l in sorted(judgment.quantiles)]
        assert values == sorted(values)
    # Experts disagree (noise is per-expert).
    medians = {j.quantiles[0.5] for j in judgments}
    assert len(medians) == 3


def test_interviews_zero_noise_recover_truth():
    mode = default_parameters().by_name["ferrous_dust"]
    rng = np.random.default_rng(1)
    judgments = simulate_expert_interviews(mode, rng, sigma=1e-12)
    medians = [j.quantiles[0.5] for j in judgments]
    assert max(medians) == pytest.approx(min(medians), rel=1e-6)


def test_refit_covers_every_mode(database):
    truth = default_parameters()
    fitted, records = refit_parameters(
        database, truth, np.random.default_rng(2)
    )
    assert {record.name for record in records} == {
        mode.name for mode in truth.modes
    }
    assert isinstance(records[0], ModeFit)


def test_refit_recovers_means_approximately(database):
    truth = default_parameters()
    _, records = refit_parameters(database, truth, np.random.default_rng(3))
    for record in records:
        assert 0.3 < record.fitted_mean / record.true_mean < 3.0


def test_refit_keeps_structure_for_database_modes(database):
    truth = default_parameters()
    fitted, records = refit_parameters(
        database, truth, np.random.default_rng(4)
    )
    for record in records:
        if record.source.startswith("incident DB"):
            assert record.fitted_phases == record.true_phases
        mode = fitted.by_name[record.name]
        assert mode.phases == record.fitted_phases


def test_refit_threshold_stays_valid(database):
    truth = default_parameters()
    fitted, _ = refit_parameters(database, truth, np.random.default_rng(5))
    for mode in fitted.modes:
        if mode.threshold is not None:
            assert 1 <= mode.threshold <= mode.phases
    # The fitted parameters must build a valid tree.
    tree = build_ei_joint_fmt(fitted)
    assert len(tree.basic_events) == 11


def test_refit_deterministic_given_rng(database):
    truth = default_parameters()
    first, _ = refit_parameters(database, truth, np.random.default_rng(6))
    second, _ = refit_parameters(database, truth, np.random.default_rng(6))
    assert first == second
