"""Golden KPI fixtures for the EI-joint model, object and batch paths.

``tests/data/golden_eijoint.json`` pins the RNG stream and a subset of
the KPIs; this fixture pins the **entire** :class:`KpiSummary` — every
confidence-interval bound, the full annual cost breakdown, and the
maintenance-action rates — and asserts it through *both* estimator
paths (``Sequence[Trajectory]`` and the columnar
:class:`~repro.simulation.batch.TrajectoryBatch`) with exact ``==``.
This is the contract the columnar rewrite must honour: vectorizing the
estimators must not move a single float bit.

Regenerate (only for a deliberate, documented semantics change) with::

    PYTHONPATH=src python tests/test_golden_kpis.py
"""

import json
import os

import pytest

from repro.eijoint import (
    build_ei_joint_fmt,
    current_policy,
    default_cost_model,
    unmaintained,
)
from repro.simulation.batch import TrajectoryBatch
from repro.simulation.metrics import summarize
from repro.simulation.montecarlo import MonteCarlo

DATA_PATH = os.path.join(
    os.path.dirname(__file__), "data", "golden_kpis_eijoint.json"
)

SCENARIOS = [
    ("current_policy", current_policy),
    ("unmaintained", unmaintained),
]

HORIZON = 50.0
SEED = 2016
N_RUNS = 40


def _interval_record(interval):
    return [interval.estimate, interval.lower, interval.upper]


def _summary_record(summary):
    return {
        "n_runs": summary.n_runs,
        "horizon": summary.horizon,
        "unreliability": _interval_record(summary.unreliability),
        "expected_failures": _interval_record(summary.expected_failures),
        "failures_per_year": _interval_record(summary.failures_per_year),
        "availability": _interval_record(summary.availability),
        "cost_per_year": _interval_record(summary.cost_per_year),
        "cost_breakdown_per_year": summary.cost_breakdown_per_year.as_dict(),
        "inspections_per_year": summary.inspections_per_year,
        "preventive_actions_per_year": summary.preventive_actions_per_year,
        "corrective_replacements_per_year": (
            summary.corrective_replacements_per_year
        ),
    }


def _sample(strategy_factory):
    mc = MonteCarlo(
        build_ei_joint_fmt(),
        strategy_factory(),
        horizon=HORIZON,
        cost_model=default_cost_model(),
        seed=SEED,
    )
    return mc.sample(N_RUNS)


def collect_golden():
    return {
        label: _summary_record(summarize(_sample(strategy_factory)))
        for label, strategy_factory in SCENARIOS
    }


@pytest.fixture(scope="module")
def golden():
    with open(DATA_PATH, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.mark.parametrize("label,strategy_factory", SCENARIOS)
def test_full_summary_bit_identical_both_paths(golden, label, strategy_factory):
    trajectories = _sample(strategy_factory)
    from_objects = _summary_record(summarize(trajectories))
    from_batch = _summary_record(
        summarize(TrajectoryBatch.from_trajectories(trajectories))
    )
    assert from_objects == golden[label], f"{label}: object path drifted"
    assert from_batch == golden[label], f"{label}: batch path drifted"


@pytest.mark.parametrize("label,strategy_factory", SCENARIOS)
def test_streamed_run_matches_golden(golden, label, strategy_factory):
    # The default (non-keeping) run streams through the accumulator;
    # its summary must hit the same fixture.
    mc = MonteCarlo(
        build_ei_joint_fmt(),
        strategy_factory(),
        horizon=HORIZON,
        cost_model=default_cost_model(),
        seed=SEED,
    )
    result = mc.run(N_RUNS)
    assert result.batch is not None
    assert _summary_record(result.summary) == golden[label]


if __name__ == "__main__":  # pragma: no cover - fixture regeneration
    os.makedirs(os.path.dirname(DATA_PATH), exist_ok=True)
    with open(DATA_PATH, "w", encoding="utf-8") as handle:
        json.dump(collect_golden(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {DATA_PATH}")
