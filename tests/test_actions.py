"""Maintenance actions: phase semantics and validation."""

import pytest

from repro.errors import ValidationError
from repro.maintenance.actions import MaintenanceAction, clean, repair, replace


def test_replace_restores_to_zero():
    action = replace()
    assert action.resulting_phase(5) == 0
    assert action.is_full_restoration


def test_clean_default_is_full():
    assert clean().resulting_phase(3) == 0


def test_partial_restoration():
    action = repair(restore_phases=2)
    assert action.resulting_phase(5) == 3
    assert action.resulting_phase(1) == 0
    assert not action.is_full_restoration


def test_resulting_phase_never_negative():
    action = clean(restore_phases=10)
    assert action.resulting_phase(3) == 0


def test_resulting_phase_rejects_negative_input():
    with pytest.raises(ValidationError):
        clean().resulting_phase(-1)


def test_unknown_kind_rejected():
    with pytest.raises(ValidationError):
        MaintenanceAction("paint")


def test_restore_phases_must_be_positive():
    with pytest.raises(ValidationError):
        MaintenanceAction("clean", restore_phases=0)


def test_duration_must_be_non_negative():
    with pytest.raises(ValidationError):
        MaintenanceAction("clean", duration=-0.1)


def test_duration_stored():
    assert clean(duration=0.01).duration == 0.01


def test_dict_round_trip():
    action = repair(restore_phases=3, duration=0.02)
    clone = MaintenanceAction.from_dict(action.to_dict())
    assert clone == action


def test_helpers_set_kind():
    assert clean().kind == "clean"
    assert repair().kind == "repair"
    assert replace().kind == "replace"
