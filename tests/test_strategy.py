"""Maintenance strategies."""

import pytest

from repro.errors import ValidationError
from repro.maintenance.actions import clean
from repro.maintenance.modules import InspectionModule, RepairModule
from repro.maintenance.strategy import MaintenanceStrategy


def _module(name="m", period=0.5):
    return InspectionModule(name, period=period, targets=["wear"], action=clean())


def test_none_strategy():
    strategy = MaintenanceStrategy.none()
    assert strategy.on_system_failure == "replace"
    assert strategy.inspections == ()
    assert strategy.inspections_per_year == 0.0


def test_absorbing_strategy():
    strategy = MaintenanceStrategy.absorbing()
    assert strategy.on_system_failure == "none"


def test_inspections_per_year_sums_modules():
    strategy = MaintenanceStrategy(
        "s", inspections=(_module("a", 0.5), _module("b", 0.25))
    )
    assert strategy.inspections_per_year == pytest.approx(6.0)


def test_invalid_failure_response():
    with pytest.raises(ValidationError):
        MaintenanceStrategy("s", on_system_failure="ignore")


def test_negative_repair_time_rejected():
    with pytest.raises(ValidationError):
        MaintenanceStrategy("s", system_repair_time=-1.0)


def test_lists_normalised_to_tuples():
    strategy = MaintenanceStrategy("s", inspections=[_module()])
    assert isinstance(strategy.inspections, tuple)


def test_inspection_rounds_groups_synchronised_modules():
    strategy = MaintenanceStrategy(
        "s",
        inspections=(
            _module("a", 0.25),
            _module("b", 0.25),  # same schedule -> same physical round
            _module("c", 0.5),
        ),
    )
    assert strategy.inspection_rounds_per_year == pytest.approx(6.0)
    assert strategy.inspections_per_year == pytest.approx(10.0)


def test_apply_attaches_modules(maintained_tree):
    strategy = MaintenanceStrategy("s", inspections=(_module(),))
    tree = strategy.apply(maintained_tree)
    assert len(tree.inspections) == 1
    assert len(maintained_tree.inspections) == 0


def test_renamed_keeps_modules():
    strategy = MaintenanceStrategy("s", inspections=(_module(),))
    renamed = strategy.renamed("other", description="alt")
    assert renamed.name == "other"
    assert renamed.inspections == strategy.inspections
    assert renamed.description == "alt"


def test_str_mentions_inspection_period():
    strategy = MaintenanceStrategy("s", inspections=(_module(period=0.25),))
    assert "0.25y" in str(strategy)


def test_str_for_corrective_only():
    assert "corrective only" in str(MaintenanceStrategy.none())
    assert "unmaintained" in str(MaintenanceStrategy.absorbing())


def test_str_mentions_overhaul():
    strategy = MaintenanceStrategy(
        "s", repairs=(RepairModule("r", period=10.0, targets=["wear"]),)
    )
    assert "overhaul every 10y" in str(strategy)
