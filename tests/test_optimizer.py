"""Maintenance-policy optimizer."""

import pytest

from repro.core.builder import FMTBuilder
from repro.errors import ValidationError
from repro.maintenance.actions import clean
from repro.maintenance.costs import CostModel
from repro.maintenance.modules import InspectionModule
from repro.maintenance.optimizer import evaluate_strategies, optimize_frequency
from repro.maintenance.strategy import MaintenanceStrategy


@pytest.fixture(scope="module")
def tree():
    builder = FMTBuilder("opt")
    builder.degraded_event("wear", phases=4, mean=4.0, threshold=2)
    builder.or_gate("top", ["wear"])
    return builder.build("top")


def _strategy(frequency: float) -> MaintenanceStrategy:
    module = InspectionModule(
        "insp", period=1.0 / frequency, targets=["wear"], action=clean()
    )
    return MaintenanceStrategy(f"f{frequency:g}", inspections=(module,))


COSTS = CostModel(
    inspection_visit=30.0,
    action_costs={"clean": 10.0, "replace": 100.0},
    system_failure=2000.0,
)


def test_evaluate_strategies_returns_one_record_each(tree):
    evaluations = evaluate_strategies(
        tree, [_strategy(1), _strategy(4)], COSTS, horizon=20.0, n_runs=200
    )
    assert len(evaluations) == 2
    assert evaluations[0].strategy.name == "f1"
    for evaluation in evaluations:
        assert evaluation.cost_per_year.estimate > 0.0
        assert 0.0 <= evaluation.reliability <= 1.0


def test_evaluate_strategies_empty_rejected(tree):
    with pytest.raises(ValidationError):
        evaluate_strategies(tree, [], COSTS)


def test_evaluate_strategies_common_seed_reproducible(tree):
    first = evaluate_strategies(
        tree, [_strategy(2)], COSTS, horizon=20.0, n_runs=100, seed=5
    )
    second = evaluate_strategies(
        tree, [_strategy(2)], COSTS, horizon=20.0, n_runs=100, seed=5
    )
    assert (
        first[0].cost_per_year.estimate == second[0].cost_per_year.estimate
    )


def test_optimize_finds_interior_optimum(tree):
    best = optimize_frequency(
        tree,
        _strategy,
        COSTS,
        lower=0.25,
        upper=12.0,
        horizon=30.0,
        n_runs=400,
        seed=3,
        tolerance=0.5,
    )
    # With expensive failures and cheap visits the optimum is an
    # interior frequency, not a boundary.
    assert 0.5 < best.parameter < 12.0
    # The optimum beats both boundary policies.
    boundary = evaluate_strategies(
        tree,
        [_strategy(0.25), _strategy(12.0)],
        COSTS,
        horizon=30.0,
        n_runs=400,
        seed=3,
    )
    for evaluation in boundary:
        assert best.cost_per_year.estimate <= evaluation.cost_per_year.estimate


def test_optimize_validates_bounds(tree):
    with pytest.raises(ValidationError):
        optimize_frequency(tree, _strategy, COSTS, lower=2.0, upper=1.0)
    with pytest.raises(ValidationError):
        optimize_frequency(
            tree, _strategy, COSTS, lower=1.0, upper=2.0, tolerance=0.0
        )


def test_optimize_respects_evaluation_budget(tree):
    with pytest.raises(ValidationError):
        optimize_frequency(
            tree,
            _strategy,
            COSTS,
            lower=0.25,
            upper=12.0,
            n_runs=50,
            tolerance=1e-9,
            max_evaluations=5,
        )


def test_policy_evaluation_str(tree):
    best = optimize_frequency(
        tree,
        _strategy,
        COSTS,
        lower=1.0,
        upper=4.0,
        horizon=10.0,
        n_runs=100,
        tolerance=1.0,
    )
    assert "cost/yr" in str(best)
