"""Property-based tests: random fault trees, cross-engine agreement.

For randomly generated static fault trees, four independent code paths
must agree on the structure function and its probability:

* direct recursive evaluation (`tree.evaluate`),
* minimal cut sets (failure iff some cut set fully failed),
* minimal path sets (survival iff some path set fully working),
* the BDD (pointwise evaluation and exact probability).
"""

from itertools import chain, combinations

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.bdd import build_bdd
from repro.analysis.cutsets import minimal_cut_sets, minimal_path_sets
from repro.analysis.unreliability import unreliability
from repro.core.builder import FMTBuilder
from repro.dsl import dumps, loads

MAX_LEAVES = 6


@st.composite
def random_trees(draw):
    """A random static fault tree over at most MAX_LEAVES leaves."""
    n_leaves = draw(st.integers(min_value=2, max_value=MAX_LEAVES))
    builder = FMTBuilder("random")
    leaves = []
    for i in range(n_leaves):
        name = f"e{i}"
        phases = draw(st.integers(min_value=1, max_value=3))
        mean = draw(st.floats(min_value=0.5, max_value=20.0))
        builder.degraded_event(name, phases=phases, mean=mean)
        leaves.append(name)

    counter = [0]

    def make_gate(available, depth):
        size = draw(
            st.integers(min_value=2, max_value=min(4, len(available)))
        )
        children = draw(
            st.lists(
                st.sampled_from(available),
                min_size=size,
                max_size=size,
                unique=True,
            )
        )
        # Recursively replace some children with sub-gates.
        final_children = []
        for child in children:
            if depth < 2 and draw(st.booleans()) and len(available) >= 2:
                final_children.append(make_gate(available, depth + 1))
            else:
                final_children.append(child)
        # Duplicate names among final children are possible when two
        # sub-gates pick the same leaf; the gate itself must have
        # unique child names, so dedupe.
        deduped = list(dict.fromkeys(final_children))
        if len(deduped) == 1:
            deduped.append(
                draw(st.sampled_from([n for n in available if n != deduped[0]]))
            )
        counter[0] += 1
        gate_name = f"g{counter[0]}"
        kind = draw(st.sampled_from(["and", "or", "vot"]))
        if kind == "and":
            builder.and_gate(gate_name, deduped)
        elif kind == "or":
            builder.or_gate(gate_name, deduped)
        else:
            k = draw(st.integers(min_value=1, max_value=len(deduped)))
            builder.voting_gate(gate_name, k, deduped)
        return gate_name

    top = make_gate(leaves, 0)
    # Some leaves may be unreachable; prune by OR-ing them in with
    # probability-0 impact is not possible, so instead rebuild reachable
    # set via a wrapper OR gate when needed.
    try:
        return builder.build(top)
    except Exception:
        # Unreachable leaves: wrap them under the top with an AND of
        # the whole alphabet to keep all declared leaves reachable.
        builder.and_gate("all_leaves", leaves)
        builder.or_gate("wrapped_top", [top, "all_leaves"])
        return builder.build("wrapped_top")


def _assignments(names):
    for subset in chain.from_iterable(
        combinations(names, r) for r in range(len(names) + 1)
    ):
        yield set(subset)


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_cut_sets_characterize_structure_function(tree):
    cut_sets = minimal_cut_sets(tree)
    names = sorted(tree.basic_events)
    for failed in _assignments(names):
        expected = tree.evaluate(failed)
        from_cuts = any(cut <= failed for cut in cut_sets)
        assert from_cuts == expected


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_path_sets_characterize_survival(tree):
    path_sets = minimal_path_sets(tree)
    names = set(tree.basic_events)
    for failed in _assignments(sorted(names)):
        working = names - failed
        expected_up = not tree.evaluate(failed)
        from_paths = any(path <= working for path in path_sets)
        assert from_paths == expected_up


@given(random_trees())
@settings(max_examples=60, deadline=None)
def test_bdd_matches_direct_evaluation(tree):
    bdd, root = build_bdd(tree)
    names = sorted(tree.basic_events)
    for failed in _assignments(names):
        assignment = {name: name in failed for name in names}
        assert bdd.evaluate(root, assignment) == tree.evaluate(assignment)


@given(random_trees(), st.floats(min_value=0.1, max_value=10.0))
@settings(max_examples=40, deadline=None)
def test_bdd_probability_matches_inclusion_exclusion(tree, t):
    exact = unreliability(tree, t, method="bdd")
    try:
        inclusion = unreliability(tree, t, method="inclusion-exclusion")
    except Exception:
        return  # too many cut sets for I-E; nothing to compare
    assert inclusion == pytest.approx(exact, abs=1e-8)


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_unreliability_monotone_in_time(tree):
    previous = 0.0
    for t in (0.0, 0.5, 1.0, 2.0, 5.0, 15.0):
        value = unreliability(tree, t)
        assert value >= previous - 1e-12
        previous = value


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_coherence_adding_failures_never_repairs(tree):
    """All gates here are monotone: failing one more event never makes
    a failed system operational."""
    names = sorted(tree.basic_events)
    for failed in _assignments(names):
        if tree.evaluate(failed):
            for extra in names:
                assert tree.evaluate(failed | {extra})


@given(random_trees())
@settings(max_examples=40, deadline=None)
def test_galileo_round_trip_preserves_structure(tree):
    clone = loads(dumps(tree))
    names = sorted(tree.basic_events)
    assert sorted(clone.basic_events) == names
    for failed in _assignments(names):
        assert clone.evaluate(failed) == tree.evaluate(failed)
