"""Cost model and cost accounting."""

import pytest

from repro.errors import ValidationError
from repro.maintenance.costs import CostBreakdown, CostModel


def test_action_cost_default_zero():
    assert CostModel().action_cost("e", "clean") == 0.0


def test_action_cost_per_kind():
    model = CostModel(action_costs={"clean": 10.0, "replace": 100.0})
    assert model.action_cost("e", "clean") == 10.0
    assert model.action_cost("e", "replace") == 100.0
    assert model.action_cost("e", "repair") == 0.0


def test_action_cost_event_override():
    model = CostModel(
        action_costs={"replace": 100.0},
        event_action_costs={("special", "replace"): 500.0},
    )
    assert model.action_cost("special", "replace") == 500.0
    assert model.action_cost("other", "replace") == 100.0


def test_corrective_factor_scales_cost():
    model = CostModel(action_costs={"replace": 100.0}, corrective_factor=1.5)
    assert model.action_cost("e", "replace", corrective=True) == 150.0
    assert model.action_cost("e", "replace", corrective=False) == 100.0


def test_action_cost_unknown_kind_rejected():
    with pytest.raises(ValidationError):
        CostModel().action_cost("e", "paint")


def test_constructor_rejects_unknown_kinds():
    with pytest.raises(ValidationError):
        CostModel(action_costs={"paint": 1.0})
    with pytest.raises(ValidationError):
        CostModel(event_action_costs={("e", "paint"): 1.0})


def test_constructor_rejects_negative_costs():
    with pytest.raises(ValidationError):
        CostModel(inspection_visit=-1.0)
    with pytest.raises(ValidationError):
        CostModel(system_failure=-1.0)
    with pytest.raises(ValidationError):
        CostModel(module_visit_costs={"m": -1.0})


def test_corrective_factor_must_be_at_least_one():
    with pytest.raises(ValidationError):
        CostModel(corrective_factor=0.5)


def test_visit_cost_default_and_override():
    model = CostModel(
        inspection_visit=25.0, module_visit_costs={"secondary": 0.0}
    )
    assert model.visit_cost("primary") == 25.0
    assert model.visit_cost("secondary") == 0.0


def test_breakdown_total():
    breakdown = CostBreakdown(
        inspections=1.0, preventive=2.0, corrective=3.0, failures=4.0, downtime=5.0
    )
    assert breakdown.total == 15.0
    assert breakdown.planned == 3.0
    assert breakdown.unplanned == 12.0


def test_breakdown_add():
    left = CostBreakdown(inspections=1.0)
    right = CostBreakdown(inspections=2.0, failures=3.0)
    left.add(right)
    assert left.inspections == 3.0
    assert left.failures == 3.0


def test_breakdown_scaled_is_new_object():
    original = CostBreakdown(inspections=10.0)
    scaled = original.scaled(0.5)
    assert scaled.inspections == 5.0
    assert original.inspections == 10.0


def test_breakdown_per_year():
    breakdown = CostBreakdown(failures=100.0)
    assert breakdown.per_year(50.0).failures == pytest.approx(2.0)


def test_breakdown_per_year_rejects_bad_horizon():
    with pytest.raises(ValidationError):
        CostBreakdown().per_year(0.0)


def test_breakdown_as_dict():
    data = CostBreakdown(inspections=1.0, downtime=2.0).as_dict()
    assert data["total"] == 3.0
    assert set(data) == {
        "inspections",
        "preventive",
        "corrective",
        "failures",
        "downtime",
        "total",
    }
