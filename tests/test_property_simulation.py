"""Property-based tests on the stochastic layers.

Distribution sampling against analytic CDFs (Kolmogorov-Smirnov),
simulator invariants over random parameterizations, and agreement
between the simulator and the exact CTMC on randomly parameterized
Markovian models.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st
from scipy import stats as sps

from repro.core.builder import FMTBuilder
from repro.ctmc.compiler import compile_fmt
from repro.maintenance.actions import clean
from repro.maintenance.modules import InspectionModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.executor import FMTSimulator
from repro.simulation.montecarlo import MonteCarlo
from repro.stats.distributions import Erlang, Exponential, Weibull


@given(
    rate=st.floats(min_value=0.05, max_value=10.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=15, deadline=None)
def test_exponential_sampling_ks(rate, seed):
    dist = Exponential(rate=rate)
    samples = dist.sample(np.random.default_rng(seed), size=2000)
    statistic, pvalue = sps.kstest(samples, lambda x: np.vectorize(dist.cdf)(x))
    assert pvalue > 1e-4


@given(
    shape=st.integers(min_value=1, max_value=6),
    rate=st.floats(min_value=0.1, max_value=5.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=15, deadline=None)
def test_erlang_sampling_ks(shape, rate, seed):
    dist = Erlang(shape=shape, rate=rate)
    samples = dist.sample(np.random.default_rng(seed), size=2000)
    _, pvalue = sps.kstest(samples, lambda x: np.vectorize(dist.cdf)(x))
    assert pvalue > 1e-4


@given(
    scale=st.floats(min_value=0.5, max_value=10.0),
    shape=st.floats(min_value=0.5, max_value=4.0),
    seed=st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=10, deadline=None)
def test_weibull_sampling_ks(scale, shape, seed):
    dist = Weibull(scale=scale, shape=shape)
    samples = dist.sample(np.random.default_rng(seed), size=2000)
    _, pvalue = sps.kstest(samples, lambda x: np.vectorize(dist.cdf)(x))
    assert pvalue > 1e-4


def _degrading_tree(phases, mean, threshold):
    builder = FMTBuilder("prop")
    builder.degraded_event("w", phases=phases, mean=mean, threshold=threshold)
    builder.or_gate("top", ["w"])
    return builder.build("top")


@given(
    phases=st.integers(min_value=2, max_value=5),
    mean=st.floats(min_value=2.0, max_value=20.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=15, deadline=None)
def test_trajectory_invariants(phases, mean, seed):
    tree = _degrading_tree(phases, mean, threshold=1)
    sim = FMTSimulator(tree, MaintenanceStrategy.none(), horizon=50.0)
    trajectory = sim.simulate(np.random.default_rng(seed))
    assert 0.0 <= trajectory.downtime <= trajectory.horizon
    assert 0.0 <= trajectory.availability <= 1.0
    assert all(0.0 <= t <= 50.0 for t in trajectory.failure_times)
    assert trajectory.failure_times == sorted(trajectory.failure_times)
    assert trajectory.costs.total == 0.0  # no cost model configured


@given(
    phases=st.integers(min_value=2, max_value=4),
    period=st.floats(min_value=0.1, max_value=1.0),
    seed=st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=8, deadline=None)
def test_inspections_never_hurt(phases, period, seed):
    """Expected failures with inspections <= without (statistically)."""
    tree = _degrading_tree(phases, mean=4.0, threshold=1)
    module = InspectionModule("i", period=period, targets=["w"], action=clean())
    inspected = MaintenanceStrategy("s", inspections=(module,))
    base = MonteCarlo(tree, MaintenanceStrategy.none(), horizon=40.0, seed=seed)
    better = MonteCarlo(tree, inspected, horizon=40.0, seed=seed)
    enf_base = base.run(60).summary.expected_failures.estimate
    enf_better = better.run(60).summary.expected_failures.estimate
    assert enf_better <= enf_base + 1.0  # generous statistical slack


@given(
    phases=st.integers(min_value=1, max_value=3),
    mean=st.floats(min_value=1.0, max_value=10.0),
    period=st.floats(min_value=0.2, max_value=2.0),
)
@settings(max_examples=8, deadline=None)
def test_simulator_matches_ctmc_unreliability(phases, mean, period):
    """Random Markovian FMT: the simulated unreliability at the horizon
    must contain the exact CTMC value in its 99.9% CI.

    The wide confidence level keeps the per-example false-alarm
    probability negligible across the many examples hypothesis tries.
    """
    threshold = max(1, phases - 1)
    tree = _degrading_tree(phases, mean, threshold)
    module = InspectionModule(
        "i", period=period, targets=["w"], action=clean(), timing="exponential"
    )
    strategy = MaintenanceStrategy(
        "s", inspections=(module,), on_system_failure="none"
    )
    exact = compile_fmt(tree, strategy).unreliability(5.0)
    sim = MonteCarlo(tree, strategy, horizon=5.0, seed=17).run(
        3000, confidence=0.999
    )
    assert sim.unreliability.contains(exact)
