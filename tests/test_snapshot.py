"""Engine and simulator snapshot/restore: bookkeeping and determinism.

The rare-event subsystem forks trajectories mid-flight, which stresses
two invariants that crude simulation never exercises:

* the O(1) pending-event count stays consistent through arbitrary
  schedule / cancel / snapshot / restore interleavings (a cancelled or
  stale handle must never corrupt it);
* restoring a snapshot detaches the abandoned timeline — cancelling a
  pre-restore handle afterwards is a no-op.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import inspection_policy
from repro.simulation.engine import Engine
from repro.simulation.executor import FMTSimulator, SimulationConfig


# ----------------------------------------------------------------------
# Engine-level bookkeeping
# ----------------------------------------------------------------------
def test_snapshot_restore_roundtrip_executes_same_events():
    fired = []
    engine = Engine()
    engine.schedule(1.0, lambda: fired.append("a"))
    engine.schedule(2.0, lambda: fired.append("b"))
    engine.schedule(3.0, lambda: fired.append("c"))
    snap = engine.snapshot()
    engine.run_until(10.0)
    assert fired == ["a", "b", "c"]
    engine.restore(snap)
    assert engine.pending == 3
    assert engine.now == snap.now
    engine.run_until(10.0)
    assert fired == ["a", "b", "c", "a", "b", "c"]


def test_restore_detaches_abandoned_timeline():
    engine = Engine()
    stale = engine.schedule(5.0, lambda: None)
    snap = engine.snapshot()
    mapping = engine.restore(snap)
    assert engine.pending == 1
    # The pre-restore handle belongs to the abandoned timeline; its
    # cancel must be a no-op on the restored queue.
    stale.cancel()
    assert engine.pending == 1
    # The remapped handle is the live one.
    mapping[id(stale)].cancel()
    assert engine.pending == 0


def test_cancelled_events_not_captured():
    engine = Engine()
    keep = engine.schedule(1.0, lambda: None)
    drop = engine.schedule(2.0, lambda: None)
    drop.cancel()
    snap = engine.snapshot()
    engine.restore(snap)
    assert engine.pending == 1
    assert id(keep) in engine.restore(snap)


@given(
    ops=st.lists(
        st.tuples(st.sampled_from(["schedule", "cancel", "step", "snap", "restore"]),
                  st.integers(0, 999)),
        min_size=1,
        max_size=60,
    )
)
@settings(max_examples=60, deadline=None)
def test_pending_count_consistent_under_random_interleavings(ops):
    engine = Engine()
    alive = []  # ground-truth list of live handles
    saved = None  # (snapshot, count-at-snapshot, handles-at-snapshot)
    stale = []  # handles invalidated by a restore
    for op, value in ops:
        if op == "schedule":
            alive.append(engine.schedule(engine.now + 1.0 + value / 100.0,
                                         lambda: None))
        elif op == "cancel" and (alive or stale):
            pool = alive + stale
            handle = pool[value % len(pool)]
            handle.cancel()
            if handle in alive:
                alive.remove(handle)
        elif op == "step":
            ran = engine.step()
            if ran:
                # The fired event is the (time, priority, seq) minimum.
                alive.remove(
                    min(alive, key=lambda h: (h.time, h.priority, h.seq))
                )
        elif op == "snap":
            saved = (engine.snapshot(), list(alive))
        elif op == "restore" and saved is not None:
            snapshot, snapshot_alive = saved
            mapping = engine.restore(snapshot)
            stale.extend(alive)
            alive = [mapping[id(h)] for h in snapshot_alive]
        assert engine.pending == len(alive)
    # Draining the queue executes exactly the live events.
    engine.run_until(float("inf"))
    assert engine.pending == 0


# ----------------------------------------------------------------------
# Simulator-level fork/restore
# ----------------------------------------------------------------------
@pytest.fixture
def ei_simulator():
    params = default_parameters()
    tree = build_ei_joint_fmt(params)
    strategy = inspection_policy(4.0, parameters=params)
    return FMTSimulator(tree, strategy, config=SimulationConfig(horizon=25.0))


def test_simulator_restore_is_deterministic(ei_simulator):
    sim = ei_simulator
    sim.begin(np.random.default_rng(3))
    for _ in range(25):
        if not sim.step():
            break
    snap = sim.snapshot()

    def continuation(seed):
        sim.restore(snap, rng=np.random.default_rng(seed))
        sim.resample_transitions()
        trajectory = sim.finish()
        return (
            trajectory.failure_times,
            trajectory.n_inspections,
            trajectory.costs.total,
        )

    first = continuation(7)
    second = continuation(7)
    assert first == second  # same continuation seed -> identical future


def test_simulator_restore_preserves_clock_and_state(ei_simulator):
    sim = ei_simulator
    sim.begin(np.random.default_rng(5))
    for _ in range(10):
        sim.step()
    snap = sim.snapshot()
    now, phases = sim.now, dict(sim.phases)
    sim.finish()
    sim.restore(snap, rng=np.random.default_rng(0))
    assert sim.now == now
    assert sim.phases == phases
    trajectory = sim.finish()
    assert trajectory.horizon == 25.0
    assert all(t <= 25.0 for t in trajectory.failure_times)


def test_plain_simulate_unaffected_by_prior_fork(ei_simulator):
    """A fork/restore cycle must not leak state into later simulate()."""
    sim = ei_simulator
    baseline = sim.simulate(np.random.default_rng(11))
    sim.begin(np.random.default_rng(1))
    for _ in range(8):
        sim.step()
    sim.restore(sim.snapshot(), rng=np.random.default_rng(2))
    sim.finish()
    again = sim.simulate(np.random.default_rng(11))
    assert baseline.failure_times == again.failure_times
    assert baseline.costs.total == again.costs.total
