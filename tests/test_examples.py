"""The shipped examples: importable, and their model builders work.

Full example runs take tens of seconds (they are exercised separately);
here we import every example module (catching syntax/API drift) and
execute the cheap model-construction parts.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"
EXAMPLE_FILES = sorted(EXAMPLES_DIR.glob("*.py"))


def _load(path: Path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_exist():
    names = {path.stem for path in EXAMPLE_FILES}
    assert {
        "quickstart",
        "ei_joint_case_study",
        "custom_maintenance_strategy",
        "parameter_fitting",
        "fault_tree_analysis",
        "phase_type_fitting",
        "fleet_analysis",
    } <= names


@pytest.mark.parametrize(
    "path", EXAMPLE_FILES, ids=lambda path: path.stem
)
def test_example_imports_and_defines_main(path):
    module = _load(path)
    assert callable(getattr(module, "main", None))


def test_quickstart_model_builds():
    module = _load(EXAMPLES_DIR / "quickstart.py")
    tree = module.build_model()
    assert set(tree.basic_events) == {"pump_a", "pump_b", "valve"}


def test_custom_strategy_builds():
    module = _load(EXAMPLES_DIR / "custom_maintenance_strategy.py")
    strategy = module.build_custom_strategy()
    assert strategy.name == "differentiated"
    assert len(strategy.inspections) == 3
    assert len(strategy.repairs) == 1
