"""Unit-conversion helpers."""

import math

import pytest

from repro import units


def test_months_to_years():
    assert units.months(6.0) == pytest.approx(0.5)


def test_weeks_to_years():
    assert units.weeks(units.WEEKS_PER_YEAR) == pytest.approx(1.0)


def test_days_to_years():
    assert units.days(365.25) == pytest.approx(1.0)


def test_hours_to_years():
    assert units.hours(units.HOURS_PER_YEAR) == pytest.approx(1.0)


def test_years_identity():
    assert units.years(3.5) == 3.5


def test_per_month_rate():
    assert units.per_month(1.0) == pytest.approx(12.0)


def test_per_year_identity():
    assert units.per_year(0.3) == 0.3


def test_format_years_days():
    assert units.format_years(1.0 / 365.25) == "1.0 days"


def test_format_years_months():
    assert units.format_years(0.25) == "3.0 months"


def test_format_years_years():
    assert units.format_years(2.0) == "2.00 years"


def test_format_years_zero():
    assert units.format_years(0) == "0"


def test_format_years_negative_raises():
    with pytest.raises(ValueError):
        units.format_years(-1.0)


def test_format_money():
    assert units.format_money(12345.6) == "EUR 12,346"


def test_format_money_currency():
    assert units.format_money(10, currency="GBP") == "GBP 10"
