"""Modular decomposition and modular quantification."""

import pytest

from repro.analysis.modularization import find_modules, modular_unreliability
from repro.analysis.unreliability import unreliability
from repro.core.builder import FMTBuilder
from repro.errors import UnsupportedModelError


def test_top_is_always_a_module(layered_tree):
    assert layered_tree.top.name in find_modules(layered_tree)


def test_independent_subtrees_are_modules(simple_or_tree):
    # No sharing at all: every gate is a module.
    assert find_modules(simple_or_tree) == ["top"]


def test_shared_event_breaks_module(layered_tree):
    # 'b' is shared between gates 'ab' and 'bcd': neither is a module.
    modules = find_modules(layered_tree)
    assert "ab" not in modules
    assert "bcd" not in modules
    assert modules == ["top"]


def test_nested_modules():
    builder = FMTBuilder("nested")
    for name in ("a", "b", "c", "d"):
        builder.basic_event(name, rate=0.3)
    builder.and_gate("left", ["a", "b"])
    builder.or_gate("right", ["c", "d"])
    builder.or_gate("top", ["left", "right"])
    tree = builder.build("top")
    assert find_modules(tree) == ["left", "right", "top"]


def test_rdep_crossing_breaks_module(maintained_tree):
    builder = FMTBuilder("crossed")
    for name in ("a", "b", "c"):
        builder.basic_event(name, rate=0.3)
    builder.and_gate("sub", ["a", "b"])
    builder.or_gate("top", ["sub", "c"])
    builder.rdep("d", trigger="c", targets=["a"], factor=2.0)
    tree = builder.build("top")
    assert "sub" not in find_modules(tree)


def test_eijoint_modules():
    from repro.eijoint import build_ei_joint_fmt

    tree = build_ei_joint_fmt()
    modules = find_modules(tree)
    # The electrical subtree shares nothing and has no crossing RDEPs.
    assert "electrical_failure" in modules
    # The bolt gate's events trigger RDEPs on glue (outside): no module.
    assert "bolt_failure" not in modules


def test_modular_unreliability_matches_monolithic():
    builder = FMTBuilder("nested")
    builder.basic_event("a", rate=0.5)
    builder.basic_event("b", rate=0.3)
    builder.degraded_event("c", phases=3, mean=4.0)
    builder.basic_event("d", rate=0.1)
    builder.and_gate("left", ["a", "b"])
    builder.voting_gate("right", 1, ["c", "d"])
    builder.or_gate("top", ["left", "right"])
    tree = builder.build("top")
    for t in (0.5, 2.0, 8.0):
        assert modular_unreliability(tree, t) == pytest.approx(
            unreliability(tree, t), abs=1e-10
        )


def test_modular_unreliability_with_sharing(layered_tree):
    # Sharing means only the top module exists; still must be exact.
    for t in (1.0, 3.0):
        assert modular_unreliability(layered_tree, t) == pytest.approx(
            unreliability(layered_tree, t), abs=1e-10
        )


def test_modular_unreliability_eijoint():
    from repro.eijoint import build_ei_joint_fmt

    tree = build_ei_joint_fmt().without_dependencies()
    assert modular_unreliability(tree, 5.0) == pytest.approx(
        unreliability(tree, 5.0), abs=1e-10
    )


def test_modular_rejects_dependencies(maintained_tree):
    with pytest.raises(UnsupportedModelError):
        modular_unreliability(maintained_tree, 1.0)


def test_modular_rejects_pand():
    builder = FMTBuilder("pand")
    builder.basic_event("a", rate=1.0)
    builder.basic_event("b", rate=1.0)
    builder.pand_gate("top", ["a", "b"])
    with pytest.raises(UnsupportedModelError):
        modular_unreliability(builder.build("top"), 1.0)
