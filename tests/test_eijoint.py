"""The EI-joint case-study model, parameters, and strategies."""

import dataclasses

import pytest

from repro.eijoint.model import (
    BOLT_GATE,
    ELECTRICAL_GATE,
    MECHANICAL_GATE,
    TOP,
    build_ei_joint_fmt,
    inspectable_modes,
)
from repro.eijoint.parameters import (
    EIJointParameters,
    default_cost_model,
    default_parameters,
)
from repro.eijoint.strategies import (
    CURRENT_INSPECTIONS_PER_YEAR,
    current_policy,
    inspection_policy,
    no_maintenance,
    renewal_only,
    strategy_grid,
    unmaintained,
)
from repro.errors import ValidationError


def test_default_parameters_valid():
    parameters = default_parameters()
    assert len(parameters.modes) == 11
    assert parameters.bolt_names == ("bolt_1", "bolt_2", "bolt_3", "bolt_4")


def test_mode_lookup_and_phase_rate():
    parameters = default_parameters()
    dust = parameters.by_name["ferrous_dust"]
    assert dust.phase_rate == pytest.approx(dust.phases / dust.mean_lifetime)


def test_with_mode_changes_one_mode():
    parameters = default_parameters().with_mode("ferrous_dust", phases=2)
    assert parameters.by_name["ferrous_dust"].phases == 2
    assert parameters.by_name["pollution_conductive"].phases == 3


def test_with_mode_unknown_rejected():
    with pytest.raises(ValidationError):
        default_parameters().with_mode("ghost", phases=2)


def test_parameter_validation():
    with pytest.raises(ValidationError):
        dataclasses.replace(default_parameters(), bolts_needed_to_fail=9)
    with pytest.raises(ValidationError):
        dataclasses.replace(default_parameters(), bolt_glue_acceleration=0.5)


def test_tree_structure():
    tree = build_ei_joint_fmt()
    assert tree.top.name == TOP
    assert set(tree.gates) == {TOP, ELECTRICAL_GATE, MECHANICAL_GATE, BOLT_GATE}
    assert len(tree.basic_events) == 11
    assert len(tree.dependencies) == 4


def test_tree_semantics_electrical():
    tree = build_ei_joint_fmt()
    assert tree.evaluate({"ferrous_dust"})
    assert tree.evaluate({"endpost_defect"})


def test_tree_semantics_bolts_need_two():
    tree = build_ei_joint_fmt()
    assert not tree.evaluate({"bolt_1"})
    assert tree.evaluate({"bolt_1", "bolt_3"})


def test_tree_semantics_mechanical():
    tree = build_ei_joint_fmt()
    assert tree.evaluate({"glue_failure"})
    assert tree.evaluate({"rail_end_break"})


def test_rdep_disabled_when_factor_one():
    parameters = dataclasses.replace(
        default_parameters(), bolt_glue_acceleration=1.0
    )
    assert build_ei_joint_fmt(parameters).dependencies == ()


def test_inspectable_modes():
    modes = inspectable_modes()
    assert "ferrous_dust" in modes
    assert "endpost_defect" not in modes
    assert "rail_end_break" not in modes


def test_cost_model_prices():
    model = default_cost_model()
    assert model.visit_cost("inspect_clean") > 0.0
    assert model.visit_cost("inspect_repair") == 0.0
    assert model.action_cost("bolt_1", "repair") < model.action_cost(
        "glue_failure", "replace"
    )
    assert model.system_failure > model.action_cost("glue_failure", "replace")


def test_unmaintained_strategy_absorbing():
    assert unmaintained().on_system_failure == "none"


def test_no_maintenance_corrective():
    strategy = no_maintenance()
    assert strategy.on_system_failure == "replace"
    assert strategy.system_repair_time > 0.0
    assert strategy.inspections == ()


def test_inspection_policy_modules_cover_inspectables():
    strategy = inspection_policy(4)
    covered = set()
    for module in strategy.inspections:
        assert module.period == pytest.approx(0.25)
        covered.update(module.targets)
    assert covered == set(inspectable_modes())


def test_inspection_policy_actions_match_modes():
    strategy = inspection_policy(2)
    parameters = default_parameters()
    for module in strategy.inspections:
        for target in module.targets:
            assert parameters.by_name[target].action == module.action.kind


def test_inspection_policy_rejects_zero():
    with pytest.raises(ValidationError):
        inspection_policy(0)


def test_inspection_policy_with_renewal():
    strategy = inspection_policy(4, renewal_years=25.0)
    assert len(strategy.repairs) == 1
    assert strategy.repairs[0].period == 25.0
    assert set(strategy.repairs[0].targets) == {
        mode.name for mode in default_parameters().modes
    }


def test_current_policy_is_quarterly():
    strategy = current_policy()
    assert strategy.name == "current-policy"
    assert strategy.inspections_per_year == pytest.approx(
        3 * CURRENT_INSPECTIONS_PER_YEAR
    )
    for module in strategy.inspections:
        assert module.period == pytest.approx(1.0 / CURRENT_INSPECTIONS_PER_YEAR)


def test_renewal_only():
    strategy = renewal_only(10.0)
    assert strategy.inspections == ()
    assert strategy.repairs[0].period == 10.0


def test_strategy_grid():
    strategies = strategy_grid([0, 1, 4])
    assert strategies[0].name == "corrective-only"
    assert strategies[1].name == "inspect-1x"
    assert strategies[2].name == "inspect-4x"


def test_strategies_attach_to_tree():
    tree = build_ei_joint_fmt()
    attached = current_policy().apply(tree)
    assert len(attached.inspections) == 3
