"""End-to-end integration tests on the EI-joint case study.

These exercise the full pipeline — model assembly, simulation, exact
analyses, serialization, data generation, estimation — on the actual
case-study model, asserting the cross-cutting consistency properties
that individual unit tests cannot see.
"""

import pytest

from repro import MonteCarlo, dsl
from repro.analysis import minimal_cut_sets, unreliability
from repro.data.estimation import estimate_failure_rate
from repro.data.incidents import generate_incident_database
from repro.eijoint import (
    build_ei_joint_fmt,
    current_policy,
    default_cost_model,
    inspection_policy,
    no_maintenance,
    unmaintained,
)

HORIZON = 40.0
RUNS = 800


@pytest.fixture(scope="module")
def tree():
    return build_ei_joint_fmt()


def test_simulated_unmaintained_matches_static_analysis(tree):
    """Without maintenance and without RDEP, the simulator must match
    the exact BDD unreliability."""
    independent = tree.without_dependencies()
    sim = MonteCarlo(
        independent, unmaintained(), horizon=10.0, seed=21
    ).run(4000, confidence=0.99)
    exact = unreliability(independent, 10.0)
    assert sim.unreliability.contains(exact)


def test_rdep_increases_unreliability(tree):
    """The acceleration dependency can only make things worse."""
    with_dep = MonteCarlo(tree, unmaintained(), horizon=30.0, seed=3).run(RUNS)
    without = MonteCarlo(
        tree.without_dependencies(), unmaintained(), horizon=30.0, seed=3
    ).run(RUNS)
    assert (
        with_dep.unreliability.estimate
        >= without.unreliability.estimate - 0.05
    )


def test_maintenance_orders_strategies(tree):
    """ENF(corrective-only) > ENF(1x) > ENF(12x) with margins."""
    cost_model = default_cost_model()
    enf = {}
    for label, strategy in [
        ("none", no_maintenance()),
        ("1x", inspection_policy(1)),
        ("12x", inspection_policy(12)),
    ]:
        result = MonteCarlo(
            tree, strategy, horizon=HORIZON, cost_model=cost_model, seed=5
        ).run(RUNS)
        enf[label] = result.failures_per_year.estimate
    assert enf["none"] > 2.5 * enf["1x"]
    assert enf["1x"] > enf["12x"]


def test_current_policy_enf_order_of_magnitude(tree):
    """The headline number: ~1e-2 failures per joint-year."""
    result = MonteCarlo(
        tree, current_policy(), horizon=HORIZON, seed=7
    ).run(RUNS)
    assert 0.005 < result.failures_per_year.estimate < 0.05


def test_availability_is_high_under_current_policy(tree):
    result = MonteCarlo(
        tree, current_policy(), horizon=HORIZON, seed=9
    ).run(RUNS)
    assert result.availability.estimate > 0.9999


def test_cost_accounting_is_consistent(tree):
    """Breakdown categories sum to the reported total."""
    result = MonteCarlo(
        tree,
        current_policy(),
        horizon=HORIZON,
        cost_model=default_cost_model(),
        seed=11,
    ).run(200)
    breakdown = result.summary.cost_breakdown_per_year
    assert breakdown.total == pytest.approx(
        breakdown.inspections
        + breakdown.preventive
        + breakdown.corrective
        + breakdown.failures
        + breakdown.downtime
    )
    assert result.cost_per_year.estimate == pytest.approx(
        breakdown.total, rel=1e-9
    )


def test_galileo_round_trip_preserves_kpis(tree):
    """A tree serialized to text and back simulates identically."""
    attached = current_policy().apply(tree)
    clone = dsl.loads(dsl.dumps(attached))
    # Same seed, same model semantics -> identical trajectories.
    original = MonteCarlo(attached, None, horizon=20.0, seed=13).run(100)
    restored = MonteCarlo(clone, None, horizon=20.0, seed=13).run(100)
    assert (
        original.summary.expected_failures.estimate
        == restored.summary.expected_failures.estimate
    )


def test_incident_database_consistent_with_simulation(tree):
    """The database's system-failure rate must match a fresh simulation
    of the same strategy within confidence bounds."""
    database = generate_incident_database(
        tree, current_policy(), n_joints=600, window=15.0, seed=15
    )
    observed = estimate_failure_rate(database, kind="system_failure")
    simulated = MonteCarlo(
        tree, current_policy(), horizon=15.0, seed=16
    ).run(600)
    # Both are noisy; require overlapping 95% intervals.
    assert observed.lower <= simulated.failures_per_year.upper
    assert simulated.failures_per_year.lower <= observed.upper


def test_cut_sets_of_case_study_stable(tree):
    cut_sets = minimal_cut_sets(tree)
    assert len(cut_sets) == 13
    assert min(len(c) for c in cut_sets) == 1
    assert max(len(c) for c in cut_sets) == 2
