"""Basic events: construction, lifetime maths, serialization."""

import numpy as np
import pytest

from repro.core.events import BasicEvent
from repro.errors import ValidationError
from repro.stats.distributions import Erlang, Exponential


def test_exponential_constructor_by_rate():
    event = BasicEvent.exponential("e", rate=0.5)
    assert event.phases == 1
    assert event.phase_rates == (0.5,)


def test_exponential_constructor_by_mean():
    event = BasicEvent.exponential("e", mean=4.0)
    assert event.phase_rates[0] == pytest.approx(0.25)


def test_exponential_requires_exactly_one_of_rate_mean():
    with pytest.raises(ValidationError):
        BasicEvent.exponential("e")
    with pytest.raises(ValidationError):
        BasicEvent.exponential("e", rate=1.0, mean=1.0)


def test_erlang_constructor_mean_is_total():
    event = BasicEvent.erlang("e", phases=4, mean=8.0)
    assert event.mean_lifetime() == pytest.approx(8.0)
    assert event.phase_rates == (0.5,) * 4


def test_erlang_requires_positive_phase_count():
    with pytest.raises(ValidationError):
        BasicEvent.erlang("e", phases=0, mean=1.0)


def test_threshold_bounds():
    BasicEvent.erlang("ok", phases=3, mean=1.0, threshold=3)
    with pytest.raises(ValidationError):
        BasicEvent.erlang("bad", phases=3, mean=1.0, threshold=4)
    with pytest.raises(ValidationError):
        BasicEvent.erlang("bad", phases=3, mean=1.0, threshold=0)


def test_inspectable_flag():
    assert BasicEvent.erlang("a", phases=2, mean=1.0, threshold=1).inspectable
    assert not BasicEvent.erlang("b", phases=2, mean=1.0).inspectable


def test_rejects_nonpositive_rates():
    with pytest.raises(ValidationError):
        BasicEvent("e", phase_rates=[0.5, 0.0])
    with pytest.raises(ValidationError):
        BasicEvent("e", phase_rates=[])


def test_rejects_invalid_name():
    with pytest.raises(ValidationError):
        BasicEvent.exponential("1bad", rate=1.0)


def test_is_basic():
    assert BasicEvent.exponential("e", rate=1.0).is_basic


def test_lifetime_distribution_exponential():
    dist = BasicEvent.exponential("e", rate=0.5).lifetime_distribution()
    assert isinstance(dist, Exponential)
    assert dist.rate == 0.5


def test_lifetime_distribution_erlang():
    dist = BasicEvent.erlang("e", phases=3, rate=0.5).lifetime_distribution()
    assert isinstance(dist, Erlang)
    assert dist.shape == 3


def test_lifetime_distribution_rejects_hypoexponential():
    event = BasicEvent("e", phase_rates=[1.0, 2.0])
    with pytest.raises(ValidationError):
        event.lifetime_distribution()


def test_lifetime_cdf_matches_erlang():
    event = BasicEvent.erlang("e", phases=3, mean=6.0)
    erlang = event.lifetime_distribution()
    for t in (0.5, 2.0, 10.0):
        assert event.lifetime_cdf(t) == pytest.approx(erlang.cdf(t), abs=1e-9)


def test_lifetime_cdf_from_later_phase_is_larger():
    event = BasicEvent.erlang("e", phases=4, mean=8.0)
    assert event.lifetime_cdf(2.0, from_phase=2) > event.lifetime_cdf(2.0)


def test_lifetime_cdf_from_failed_phase():
    event = BasicEvent.erlang("e", phases=2, mean=1.0)
    assert event.lifetime_cdf(0.5, from_phase=2) == 1.0


def test_lifetime_cdf_bad_phase():
    event = BasicEvent.erlang("e", phases=2, mean=1.0)
    with pytest.raises(ValidationError):
        event.lifetime_cdf(1.0, from_phase=3)


def test_lifetime_cdf_hypoexponential_monotone():
    event = BasicEvent("e", phase_rates=[2.0, 0.5, 1.0])
    values = [event.lifetime_cdf(t) for t in np.linspace(0.0, 10.0, 20)]
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


def test_phase_distribution_sums_to_one():
    event = BasicEvent.erlang("e", phases=3, mean=6.0)
    dist = event.phase_distribution_at(2.0)
    assert len(dist) == 4
    assert float(np.sum(dist)) == pytest.approx(1.0)


def test_phase_distribution_at_zero_is_pristine():
    event = BasicEvent.erlang("e", phases=3, mean=6.0)
    dist = event.phase_distribution_at(0.0)
    assert dist[0] == pytest.approx(1.0)


def test_sample_lifetime_mean(rng):
    event = BasicEvent.erlang("e", phases=4, mean=8.0)
    samples = [event.sample_lifetime(rng) for _ in range(5000)]
    assert np.mean(samples) == pytest.approx(8.0, rel=0.05)


def test_sample_lifetime_from_phase_shorter(rng):
    event = BasicEvent.erlang("e", phases=4, mean=8.0)
    samples = [event.sample_lifetime(rng, from_phase=3) for _ in range(5000)]
    assert np.mean(samples) == pytest.approx(2.0, rel=0.1)


def test_dict_round_trip():
    event = BasicEvent.erlang(
        "e", phases=3, mean=6.0, threshold=2, description="wear"
    )
    clone = BasicEvent.from_dict(event.to_dict())
    assert clone.to_dict() == event.to_dict()


def test_repr_contains_name_and_phases():
    text = repr(BasicEvent.erlang("wear", phases=3, mean=6.0, threshold=2))
    assert "wear" in text and "phases=3" in text
