"""Extension features: imperfect inspections and cost discounting."""

import math

import numpy as np
import pytest

from repro.core.builder import FMTBuilder
from repro.ctmc.compiler import compile_fmt
from repro.dsl import dumps, loads
from repro.errors import ValidationError
from repro.maintenance.actions import clean
from repro.maintenance.costs import CostModel
from repro.maintenance.modules import InspectionModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.executor import FMTSimulator, SimulationConfig
from repro.simulation.montecarlo import MonteCarlo


def _tree(phases=4, mean=4.0, threshold=2):
    builder = FMTBuilder("ext")
    builder.degraded_event("w", phases=phases, mean=mean, threshold=threshold)
    builder.or_gate("top", ["w"])
    return builder.build("top")


def _strategy(detection_probability=1.0, timing="periodic", period=0.25):
    module = InspectionModule(
        "i",
        period=period,
        targets=["w"],
        action=clean(),
        timing=timing,
        detection_probability=detection_probability,
    )
    return MaintenanceStrategy("s", inspections=(module,))


# ----------------------------------------------------------------------
# Imperfect inspections
# ----------------------------------------------------------------------
def test_detection_probability_validation():
    with pytest.raises(ValidationError):
        InspectionModule(
            "i", period=1.0, targets=["w"], detection_probability=0.0
        )
    with pytest.raises(ValidationError):
        InspectionModule(
            "i", period=1.0, targets=["w"], detection_probability=1.2
        )


def test_detection_probability_round_trips():
    module = InspectionModule(
        "i", period=1.0, targets=["w"], detection_probability=0.7
    )
    clone = InspectionModule.from_dict(module.to_dict())
    assert clone.detection_probability == 0.7


def test_detection_probability_galileo_round_trip():
    text = (
        "toplevel t; t or w; w phases=3 mean=6 threshold=2;"
        "inspection i period=0.5 targets=w action=clean "
        "detectionprobability=0.8;"
    )
    tree = loads(text)
    assert tree.inspections[0].detection_probability == 0.8
    assert "detectionprobability=0.8" in dumps(tree)


def test_imperfect_inspection_allows_more_failures():
    tree = _tree()
    enf = {}
    for p in (1.0, 0.5):
        mc = MonteCarlo(tree, _strategy(p), horizon=200.0, seed=8)
        enf[p] = mc.run(30).summary.expected_failures.estimate
    assert enf[0.5] > enf[1.0]


def test_imperfect_inspection_interpolates_to_none():
    """With a tiny detection probability, ENF approaches no-maintenance."""
    tree = _tree()
    barely = MonteCarlo(
        tree, _strategy(0.01), horizon=300.0, seed=9
    ).run(20).summary.expected_failures.estimate
    unmaintained = MonteCarlo(
        tree, MaintenanceStrategy.none(), horizon=300.0, seed=9
    ).run(20).summary.expected_failures.estimate
    assert barely == pytest.approx(unmaintained, rel=0.15)


def test_imperfect_inspection_matches_ctmc():
    """Exact CTMC with subset-enumerated detection vs the simulator."""
    tree = _tree(phases=3, mean=3.0, threshold=1)
    strategy = MaintenanceStrategy(
        "s",
        inspections=(
            InspectionModule(
                "i",
                period=0.5,
                targets=["w"],
                action=clean(),
                timing="exponential",
                detection_probability=0.6,
            ),
        ),
        on_system_failure="none",
    )
    exact = compile_fmt(tree, strategy).unreliability(5.0)
    sim = MonteCarlo(tree, strategy, horizon=5.0, seed=21).run(
        6000, confidence=0.999
    )
    assert sim.unreliability.contains(exact)


def test_imperfect_detection_only_affects_degradation_not_failures():
    # 2-of-2 AND keeps a failed 'a' latent; inspection must still
    # replace it even with low detection probability.
    builder = FMTBuilder("latent")
    builder.degraded_event("a", phases=1, mean=0.5, threshold=1)
    builder.degraded_event("b", phases=1, mean=1e9, threshold=1)
    builder.and_gate("top", ["a", "b"])
    tree = builder.build("top")
    module = InspectionModule(
        "i",
        period=1.0,
        targets=["a"],
        action=clean(),
        detection_probability=0.01,
    )
    strategy = MaintenanceStrategy("s", inspections=(module,))
    trajectory = FMTSimulator(tree, strategy, horizon=100.0).simulate(
        np.random.default_rng(3)
    )
    # ~100 failures of 'a', each found at the next inspection.
    assert trajectory.n_corrective_replacements > 50


# ----------------------------------------------------------------------
# Cost discounting
# ----------------------------------------------------------------------
def test_discount_factor():
    model = CostModel(discount_rate=0.05)
    assert model.discount_factor(0.0) == 1.0
    assert model.discount_factor(10.0) == pytest.approx(math.exp(-0.5))


def test_discount_factor_zero_rate():
    assert CostModel().discount_factor(100.0) == 1.0


def test_discounted_downtime_closed_form():
    model = CostModel(downtime_per_year=100.0, discount_rate=0.1)
    value = model.discounted_downtime_cost(1.0, 3.0)
    expected = 100.0 * (math.exp(-0.1) - math.exp(-0.3)) / 0.1
    assert value == pytest.approx(expected)


def test_discounted_downtime_zero_rate_is_linear():
    model = CostModel(downtime_per_year=100.0)
    assert model.discounted_downtime_cost(1.0, 3.0) == pytest.approx(200.0)


def test_discounted_downtime_rejects_reversed_interval():
    with pytest.raises(ValidationError):
        CostModel().discounted_downtime_cost(3.0, 1.0)


def test_negative_discount_rate_rejected():
    with pytest.raises(ValidationError):
        CostModel(discount_rate=-0.1)


def test_discounting_reduces_total_costs():
    tree = _tree()
    base = CostModel(
        inspection_visit=10.0,
        action_costs={"clean": 5.0},
        system_failure=100.0,
    )
    discounted = CostModel(
        inspection_visit=10.0,
        action_costs={"clean": 5.0},
        system_failure=100.0,
        discount_rate=0.05,
    )
    plain = MonteCarlo(
        tree, _strategy(), horizon=50.0, cost_model=base, seed=4
    ).run(100).summary.cost_per_year.estimate
    npv = MonteCarlo(
        tree, _strategy(), horizon=50.0, cost_model=discounted, seed=4
    ).run(100).summary.cost_per_year.estimate
    assert 0.0 < npv < plain


def test_discounted_inspection_stream_closed_form():
    """A failure-free model: only inspections are charged, at known
    times, so the NPV has an exact closed form."""
    builder = FMTBuilder("quiet")
    builder.degraded_event("w", phases=2, mean=1e9, threshold=1)
    builder.or_gate("top", ["w"])
    tree = builder.build("top")
    rate = 0.1
    model = CostModel(inspection_visit=100.0, discount_rate=rate)
    config = SimulationConfig(horizon=10.0, cost_model=model)
    strategy = _strategy(period=1.0)
    trajectory = FMTSimulator(tree, strategy, config=config).simulate(
        np.random.default_rng(5)
    )
    expected = sum(100.0 * math.exp(-rate * t) for t in range(1, 11))
    assert trajectory.costs.inspections == pytest.approx(expected)
