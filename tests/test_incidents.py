"""Incident database: generation, queries, persistence."""

import pytest

from repro.data.incidents import (
    IncidentDatabase,
    IncidentRecord,
    generate_incident_database,
)
from repro.errors import ValidationError


def _record(joint=0, time=1.0, component="w", kind="failure", **kw):
    return IncidentRecord(
        joint_id=joint, time=time, component=component, kind=kind, **kw
    )


def _database():
    records = [
        _record(0, 1.0, "w", "failure"),
        _record(0, 1.0, "top", "system_failure"),
        _record(0, 1.0, "top", "system_restored"),
        _record(1, 2.0, "w", "detection", phase=2),
        _record(1, 2.0, "w", "clean"),
        _record(1, 4.0, "v", "failure"),
    ]
    return IncidentDatabase(records, n_joints=4, window=10.0)


def test_joint_years():
    assert _database().joint_years == 40.0


def test_records_sorted_by_joint_then_time():
    db = IncidentDatabase(
        [_record(1, 5.0), _record(0, 2.0), _record(0, 1.0)],
        n_joints=2,
        window=10.0,
    )
    keys = [(r.joint_id, r.time) for r in db.records]
    assert keys == sorted(keys)


def test_of_kind():
    assert len(_database().of_kind("failure")) == 2
    assert len(_database().of_kind("system_failure")) == 1


def test_component_failures_filter():
    db = _database()
    assert len(db.component_failures()) == 2
    assert len(db.component_failures("w")) == 1
    assert db.component_failures("w")[0].component == "w"


def test_failure_modes():
    assert _database().failure_modes() == ["v", "w"]


def test_count_and_rate():
    db = _database()
    assert db.count("failure") == 2
    assert db.count("failure", "v") == 1
    assert db.rate_per_joint_year("failure") == pytest.approx(0.05)


def test_for_joint():
    db = _database()
    assert len(db.for_joint(0)) == 3
    assert db.for_joint(3) == []


def test_validation():
    with pytest.raises(ValidationError):
        IncidentDatabase([], n_joints=0, window=10.0)
    with pytest.raises(ValidationError):
        IncidentDatabase([], n_joints=1, window=0.0)


def test_csv_round_trip(tmp_path):
    db = _database()
    path = tmp_path / "incidents.csv"
    db.to_csv(path)
    clone = IncidentDatabase.from_csv(path)
    assert clone.n_joints == db.n_joints
    assert clone.window == db.window
    assert clone.records == db.records


def test_from_csv_rejects_other_files(tmp_path):
    path = tmp_path / "other.csv"
    path.write_text("a,b,c\n1,2,3\n")
    with pytest.raises(ValidationError):
        IncidentDatabase.from_csv(path)


def test_generate_database(maintained_tree, inspection_strategy):
    db = generate_incident_database(
        maintained_tree, inspection_strategy, n_joints=30, window=20.0, seed=3
    )
    assert db.n_joints == 30
    assert db.window == 20.0
    assert len(db) > 0
    kinds = {record.kind for record in db.records}
    assert "system_failure" in kinds or "clean" in kinds
    # Joint ids stay within the fleet.
    assert all(0 <= record.joint_id < 30 for record in db.records)


def test_generate_database_deterministic(maintained_tree, inspection_strategy):
    first = generate_incident_database(
        maintained_tree, inspection_strategy, n_joints=10, window=10.0, seed=5
    )
    second = generate_incident_database(
        maintained_tree, inspection_strategy, n_joints=10, window=10.0, seed=5
    )
    assert first.records == second.records


def test_repr():
    assert "n_joints=4" in repr(_database())
