"""Executor edge cases: renewal/cancellation interplay, PAND resets,
shared subtrees under maintenance, module ticks during downtime."""

import numpy as np
import pytest

from repro.core.builder import FMTBuilder
from repro.maintenance.actions import clean, repair
from repro.maintenance.costs import CostModel
from repro.maintenance.modules import InspectionModule, RepairModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.executor import FMTSimulator, SimulationConfig


def _rng(seed=0):
    return np.random.default_rng(seed)


def test_pending_delayed_action_cancelled_by_system_renewal():
    """A work order pending when the system fails must not execute on
    the freshly renewed asset."""
    builder = FMTBuilder("pending")
    builder.degraded_event("slow", phases=3, mean=6.0, threshold=1)
    builder.degraded_event("fast", phases=1, mean=0.3, threshold=1)
    builder.or_gate("top", ["slow", "fast"])
    tree = builder.build("top")
    # Long delay: 'fast' fails (renewing everything) while the order
    # for 'slow' is still pending.
    module = InspectionModule(
        "i", period=0.5, targets=["slow"], action=clean(), delay=5.0
    )
    strategy = MaintenanceStrategy("s", inspections=(module,))
    config = SimulationConfig(
        horizon=50.0,
        cost_model=CostModel(action_costs={"clean": 1.0}),
        record_events=True,
    )
    trajectory = FMTSimulator(tree, strategy, config=config).simulate(_rng(1))
    # Any executed clean must happen at least `delay` after a detection
    # of a *post-renewal* degradation; the easy invariant: the clean
    # count can't exceed the detection count.
    detections = sum(1 for e in trajectory.events if e.kind == "detection")
    cleans = sum(
        1 for e in trajectory.events if e.kind == "clean" and not e.corrective
    )
    assert cleans <= detections


def test_pand_resets_after_repair():
    """PAND requires in-order failure; renewal resets the order."""
    builder = FMTBuilder("pand_reset")
    builder.degraded_event("first", phases=1, mean=1.0, threshold=1)
    builder.degraded_event("second", phases=1, mean=1.0, threshold=1)
    builder.pand_gate("top", ["first", "second"])
    tree = builder.build("top")
    # Repair module renews 'first' every 0.5y: 'first' rarely stays
    # failed long enough for 'second' to follow in order.
    module = RepairModule("r", period=0.5, targets=["first"])
    with_reset = MaintenanceStrategy(
        "reset", repairs=(module,), on_system_failure="none"
    )
    without = MaintenanceStrategy.absorbing()
    failures_with = sum(
        FMTSimulator(tree, with_reset, horizon=30.0).simulate(_rng(i)).n_failures
        for i in range(200)
    )
    failures_without = sum(
        FMTSimulator(tree, without, horizon=30.0).simulate(_rng(i)).n_failures
        for i in range(200)
    )
    assert failures_with < failures_without


def test_shared_event_repair_updates_all_parents():
    """Repairing a shared child must re-evaluate every parent gate."""
    builder = FMTBuilder("shared")
    builder.degraded_event("shared", phases=1, mean=0.5, threshold=1)
    builder.degraded_event("x", phases=1, mean=1e9, threshold=1)
    builder.degraded_event("y", phases=1, mean=1e9, threshold=1)
    builder.and_gate("left", ["shared", "x"])
    builder.and_gate("right", ["shared", "y"])
    builder.or_gate("top", ["left", "right"])
    tree = builder.build("top")
    module = InspectionModule("i", period=0.25, targets=["shared"])
    strategy = MaintenanceStrategy("s", inspections=(module,))
    trajectory = FMTSimulator(tree, strategy, horizon=100.0).simulate(_rng(2))
    # 'shared' fails ~200 times but is always replaced at inspection;
    # the system (needing x or y too) never fails.
    assert trajectory.n_failures == 0
    assert trajectory.n_corrective_replacements > 50


def test_module_ticks_skipped_while_system_down():
    builder = FMTBuilder("down")
    builder.degraded_event("w", phases=1, mean=0.1, threshold=1)
    builder.or_gate("top", ["w"])
    tree = builder.build("top")
    module = InspectionModule("i", period=0.05, targets=["w"])
    # Repair takes 1 year; failures are ~every 0.1y, so the system is
    # down most of the time and most ticks must be skipped unpriced.
    strategy = MaintenanceStrategy(
        "s",
        inspections=(module,),
        on_system_failure="replace",
        system_repair_time=1.0,
    )
    config = SimulationConfig(
        horizon=100.0, cost_model=CostModel(inspection_visit=1.0)
    )
    trajectory = FMTSimulator(tree, strategy, config=config).simulate(_rng(3))
    possible_ticks = 100.0 / 0.05
    assert trajectory.n_inspections < 0.4 * possible_ticks
    assert trajectory.costs.inspections == pytest.approx(
        trajectory.n_inspections * 1.0
    )
    assert trajectory.availability < 0.5


def test_repair_module_during_downtime_noop():
    builder = FMTBuilder("renewdown")
    builder.degraded_event("w", phases=1, mean=0.2, threshold=1)
    builder.or_gate("top", ["w"])
    tree = builder.build("top")
    module = RepairModule("r", period=0.1, targets=["w"])
    strategy = MaintenanceStrategy(
        "s",
        repairs=(module,),
        on_system_failure="replace",
        system_repair_time=10.0,
    )
    trajectory = FMTSimulator(tree, strategy, horizon=50.0).simulate(_rng(4))
    # With 10y repairs, most of the horizon is downtime; renewal ticks
    # during downtime perform no actions.
    possible = 50.0 / 0.1
    assert trajectory.n_preventive_actions < 0.6 * possible


def test_zero_offset_inspection_fires_at_start():
    builder = FMTBuilder("offset0")
    builder.degraded_event("w", phases=2, mean=10.0, threshold=1)
    builder.or_gate("top", ["w"])
    tree = builder.build("top")
    module = InspectionModule(
        "i", period=1000.0, targets=["w"], offset=0.0
    )
    strategy = MaintenanceStrategy("s", inspections=(module,))
    config = SimulationConfig(horizon=1.0)
    trajectory = FMTSimulator(tree, strategy, config=config).simulate(_rng(5))
    assert trajectory.n_inspections == 1


def test_multiple_rdeps_compose_multiplicatively():
    def build(n_triggers):
        builder = FMTBuilder("multi")
        builder.degraded_event("w", phases=1, mean=100.0)
        names = []
        for i in range(2):
            builder.degraded_event(f"t{i}", phases=1, mean=0.001, threshold=1)
            names.append(f"t{i}")
        # Guard keeps triggers out of the failure logic.
        builder.and_gate("guard", names + ["w"])
        builder.or_gate("top", ["w", "guard"])
        for i in range(n_triggers):
            builder.rdep(f"d{i}", trigger=f"t{i}", targets=["w"], factor=10.0)
        return builder.build(top="top")

    means = {}
    for n in (1, 2):
        tree = build(n)
        ttf = [
            FMTSimulator(tree, MaintenanceStrategy.absorbing(), horizon=1e5)
            .simulate(_rng(i))
            .first_failure
            for i in range(300)
        ]
        means[n] = float(np.mean([t for t in ttf if t is not None]))
    # One trigger: mean ~ 100/10 = 10; two: ~ 100/100 = 1.
    assert means[1] == pytest.approx(10.0, rel=0.25)
    assert means[2] == pytest.approx(1.0, rel=0.25)
