"""The study runner: content-addressed keys, memoization, disk cache."""

from __future__ import annotations

import dataclasses
import pickle

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.maintenance.costs import CostModel
from repro.maintenance.strategy import MaintenanceStrategy
from repro.observability import Instrumentation
from repro.rareevent import RareEventConfig
from repro.simulation.montecarlo import MonteCarlo
from repro.studies import (
    CODE_SALT,
    DiskCache,
    StudyKey,
    StudyRequest,
    StudyRunner,
    canonical,
    current_runner,
    get_runner,
    use_runner,
)
from repro.studies.key import strategy_signature


@pytest.fixture
def request_for(maintained_tree, inspection_strategy):
    def make(**overrides):
        base = dict(
            tree=maintained_tree,
            strategy=inspection_strategy,
            horizon=10.0,
            seed=7,
            n_runs=30,
        )
        base.update(overrides)
        return StudyRequest(**base)

    return make


# ----------------------------------------------------------------------
# canonical() and keys
# ----------------------------------------------------------------------
def test_canonical_scalars_and_containers():
    assert canonical(None) == "none"
    assert canonical(True) == "true"
    assert canonical(3) == "int:3"
    assert canonical(0.1) == "float:0.1"
    assert canonical([1, 2]) == "[int:1,int:2]"
    # Mapping order must not leak into the key.
    assert canonical({"a": 1, "b": 2}) == canonical({"b": 2, "a": 1})


def test_canonical_distinguishes_float_bits():
    assert canonical(0.1) != canonical(0.1 + 1e-17) or 0.1 == 0.1 + 1e-17
    assert canonical(1.0) != canonical(1)


def test_canonical_rejects_unknown_objects():
    with pytest.raises(TypeError):
        canonical(object())


def test_strategy_signature_ignores_cosmetics(inspection_strategy):
    relabeled = dataclasses.replace(
        inspection_strategy, name="other", description="different words"
    )
    assert strategy_signature(inspection_strategy) == strategy_signature(
        relabeled
    )


def test_key_material_includes_code_salt(request_for):
    assert CODE_SALT in request_for().key().material


def test_key_sensitivity(request_for, maintained_tree):
    """Every simulation-relevant knob must change the digest."""
    base = request_for().key().digest
    assert request_for(seed=8).key().digest != base
    assert request_for(horizon=11.0).key().digest != base
    assert request_for(n_runs=31).key().digest != base
    assert request_for(confidence=0.99).key().digest != base
    assert request_for(record_events=True).key().digest != base
    assert request_for(strategy=None).key().digest != base
    assert (
        request_for(cost_model=CostModel(inspection_visit=5.0)).key().digest
        != base
    )
    # Same inputs -> same digest (deterministic across constructions).
    assert request_for().key().digest == base


def test_key_kernel_sensitivity(request_for):
    """The sampling kernel changes results, so it must change the key —
    but the default must not perturb digests minted before the knob
    existed (the material only gains a "kernel" entry when it deviates
    from "object")."""
    base = request_for().key()
    assert request_for(kernel="object").key().digest == base.digest
    assert "kernel" not in base.material
    vectorized = request_for(kernel="vectorized").key()
    assert vectorized.digest != base.digest
    assert "kernel" in vectorized.material


def test_request_kernel_builds_matching_simulator(request_for):
    assert request_for().build_simulator().config.kernel == "object"
    simulator = request_for(kernel="vectorized").build_simulator()
    assert simulator.config.kernel == "vectorized"


def test_derived_artifact_keys_differ(request_for):
    key = request_for().key()
    summary = key.derive("summary", None)
    curve_a = key.derive("reliability_curve", {"grid": [1.0, 2.0]})
    curve_b = key.derive("reliability_curve", {"grid": [1.0, 3.0]})
    assert len({key.digest, summary.digest, curve_a.digest, curve_b.digest}) == 4


def test_request_validation(maintained_tree):
    with pytest.raises(ValidationError):
        StudyRequest(tree=maintained_tree, n_runs=0)
    with pytest.raises(ValidationError):
        StudyRequest(tree=maintained_tree, horizon=0.0)


# ----------------------------------------------------------------------
# Memoization (one invocation)
# ----------------------------------------------------------------------
def test_summary_bit_identical_to_direct_montecarlo(request_for, maintained_tree, inspection_strategy):
    runner = StudyRunner()
    summary = runner.summary(request_for())
    direct = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=10.0, seed=7
    ).run(30)
    assert summary == direct.summary


def test_memo_dedupes_identical_requests(request_for):
    instr = Instrumentation()
    runner = StudyRunner(instrumentation=instr)
    first = runner.summary(request_for())
    second = runner.summary(request_for())
    assert first is second
    counters = instr.registry.counter
    assert counters("study.requests").value == 2
    assert counters("study.memo_hits").value == 1
    assert counters("study.misses").value == 1
    assert counters("study.fresh_trajectories").value == 30


def test_memo_dedupes_relabeled_strategy(request_for, inspection_strategy):
    relabeled = dataclasses.replace(inspection_strategy, name="alias")
    runner = StudyRunner()
    assert runner.summary(request_for()) is runner.summary(
        request_for(strategy=relabeled)
    )


def test_curve_populates_summary_artifact(request_for):
    instr = Instrumentation()
    runner = StudyRunner(instrumentation=instr)
    times, intervals = runner.reliability_curve(request_for(), [2.0, 5.0])
    assert list(times) == [2.0, 5.0]
    assert len(intervals) == 2
    # The curve's simulation also stored the summary: no new trajectories.
    runner.summary(request_for())
    assert instr.registry.counter("study.fresh_trajectories").value == 30
    assert instr.registry.counter("study.memo_hits").value == 1


def test_curve_matches_direct_run(request_for, maintained_tree, inspection_strategy):
    runner = StudyRunner()
    _, intervals = runner.reliability_curve(request_for(), [2.0, 5.0])
    direct = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=10.0, seed=7
    ).run(30, keep_trajectories=True)
    _, expected = direct.reliability_at([2.0, 5.0])
    assert intervals == list(expected)


def test_statistic_artifact_cached_by_name_and_version(request_for):
    calls = []

    def reducer(trajectories):
        calls.append(len(trajectories))
        return sum(t.n_failures for t in trajectories)

    runner = StudyRunner()
    request = request_for(record_events=True)
    first = runner.statistic(request, "failures", reducer)
    second = runner.statistic(request, "failures", reducer)
    assert first == second
    assert len(calls) == 1
    runner.statistic(request, "failures", reducer, version="2")
    assert len(calls) == 2


def test_rare_event_cached(request_for):
    config = RareEventConfig(
        method="fixed_effort", thresholds=(0.5,), effort=20, n_replications=2
    )
    instr = Instrumentation()
    runner = StudyRunner(instrumentation=instr)
    request = request_for(n_runs=1)
    first = runner.rare_event(request, config)
    second = runner.rare_event(request, config)
    assert first is second
    assert instr.registry.counter("study.memo_hits").value == 1
    # A different splitting configuration is a different artifact.
    other = runner.rare_event(
        request, dataclasses.replace(config, effort=21)
    )
    assert other is not first


def test_rare_event_matches_direct_run(request_for, maintained_tree, inspection_strategy):
    config = RareEventConfig(
        method="fixed_effort", thresholds=(0.5,), effort=20, n_replications=2
    )
    runner = StudyRunner()
    cached = runner.rare_event(request_for(n_runs=1), config)
    direct = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=10.0, seed=7
    ).run_rare_event(config, confidence=0.95)
    assert cached.unreliability == direct.unreliability


def test_memo_eviction_counter(request_for):
    instr = Instrumentation()
    runner = StudyRunner(max_memo_entries=2, instrumentation=instr)
    for seed in range(4):
        runner.summary(request_for(seed=seed))
    assert len(runner._memo) == 2
    assert instr.registry.counter("study.memo_evictions").value == 2


# ----------------------------------------------------------------------
# Disk cache
# ----------------------------------------------------------------------
def test_disk_cache_roundtrip_bit_identical(tmp_path, request_for):
    warm = StudyRunner(cache_dir=str(tmp_path))
    fresh_summary = warm.summary(request_for())

    cold = StudyRunner(cache_dir=str(tmp_path))
    instr = Instrumentation()
    cold.instrumentation = instr
    cached_summary = cold.summary(request_for())
    assert cached_summary == fresh_summary
    assert instr.registry.counter("study.disk_hits").value == 1
    assert instr.registry.counter("study.fresh_trajectories").value == 0


def test_disk_cache_bit_identical_via_parallel_path(tmp_path, request_for, maintained_tree, inspection_strategy):
    """A cache entry written by a pooled run equals the serial result."""
    parallel = StudyRunner(
        cache_dir=str(tmp_path), processes=2, parallel_threshold=10
    )
    try:
        pooled = parallel.summary(request_for())
    finally:
        parallel.close()
    serial = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=10.0, seed=7
    ).run(30)
    assert pooled == serial.summary

    reader = StudyRunner(cache_dir=str(tmp_path))
    assert reader.summary(request_for()) == serial.summary


def test_disk_cache_key_sensitivity(tmp_path, request_for):
    runner = StudyRunner(cache_dir=str(tmp_path))
    runner.summary(request_for())
    instr = Instrumentation()
    runner.instrumentation = instr
    runner.summary(request_for(seed=99))
    runner.summary(request_for(horizon=12.0))
    assert instr.registry.counter("study.misses").value == 2
    assert instr.registry.counter("study.disk_hits").value == 0


def test_corrupt_cache_file_recomputed(tmp_path, request_for):
    runner = StudyRunner(cache_dir=str(tmp_path))
    expected = runner.summary(request_for())
    path = runner.disk.path_for(request_for().key().derive("summary", None))
    assert path.exists()
    path.write_bytes(b"not a pickle")

    instr = Instrumentation()
    recovered = StudyRunner(cache_dir=str(tmp_path), instrumentation=instr)
    assert recovered.summary(request_for()) == expected
    assert instr.registry.counter("study.disk_corrupt").value == 1
    assert instr.registry.counter("study.misses").value == 1
    # The recomputation healed the entry on disk.
    healed = StudyRunner(cache_dir=str(tmp_path), instrumentation=Instrumentation())
    assert healed.summary(request_for()) == expected
    assert healed.instrumentation.registry.counter("study.disk_hits").value == 1


def test_material_mismatch_treated_as_corrupt(tmp_path, request_for):
    """A file that unpickles fine but holds other material is a miss."""
    cache = DiskCache(tmp_path)
    key = request_for().key().derive("summary", None)
    impostor = {"format": 1, "material": "something else", "value": 42}
    cache.path_for(key).write_bytes(pickle.dumps(impostor))
    hit, value, corrupt = cache.load(key)
    assert not hit
    assert corrupt


def test_missing_entry_is_clean_miss(tmp_path, request_for):
    cache = DiskCache(tmp_path)
    hit, value, corrupt = cache.load(request_for().key())
    assert not hit
    assert not corrupt


def test_no_cache_dir_means_no_disk_io(tmp_path, request_for):
    runner = StudyRunner()
    runner.summary(request_for())
    assert runner.disk is None
    assert list(tmp_path.iterdir()) == []


def test_salt_change_invalidates_entries(tmp_path, request_for, monkeypatch):
    runner = StudyRunner(cache_dir=str(tmp_path))
    runner.summary(request_for())

    import repro.studies.key as key_module

    monkeypatch.setattr(key_module, "CODE_SALT", CODE_SALT + "/next")
    instr = Instrumentation()
    bumped = StudyRunner(cache_dir=str(tmp_path), instrumentation=instr)
    bumped.summary(request_for())
    assert instr.registry.counter("study.disk_hits").value == 0
    assert instr.registry.counter("study.misses").value == 1


# ----------------------------------------------------------------------
# Ambient runner
# ----------------------------------------------------------------------
def test_use_runner_scopes_ambient():
    assert current_runner() is None
    runner = StudyRunner()
    with use_runner(runner):
        assert current_runner() is runner
        assert get_runner() is runner
    assert current_runner() is None


def test_get_runner_falls_back_to_default():
    fallback = get_runner()
    assert isinstance(fallback, StudyRunner)
    assert fallback.disk is None
    assert get_runner() is fallback


def test_runner_validation():
    with pytest.raises(ValidationError):
        StudyRunner(processes=0)
    with pytest.raises(ValidationError):
        StudyRunner(parallel_threshold=0)
    with pytest.raises(ValidationError):
        StudyRunner(max_memo_entries=0)


def test_experiments_share_headline_study(monkeypatch):
    """fig5 and fig6 request the same (model, policy, seed) studies:
    the second experiment must simulate nothing new for the shared
    (uncosted vs costed differ!) — here we just assert the runner is
    actually consulted by the experiment layer."""
    from repro.experiments import fig5_enf
    from repro.experiments.common import ExperimentConfig

    instr = Instrumentation()
    runner = StudyRunner(instrumentation=instr)
    cfg = ExperimentConfig(n_runs=20, horizon=5.0, seed=3)
    with use_runner(runner):
        fig5_enf.run(cfg)
        first_fresh = instr.registry.counter("study.fresh_trajectories").value
        fig5_enf.run(cfg)
    assert first_fresh > 0
    assert (
        instr.registry.counter("study.fresh_trajectories").value
        == first_fresh
    )


def test_study_key_pickles(request_for):
    key = request_for().key()
    assert pickle.loads(pickle.dumps(key)) == key


def test_numpy_scalars_canonicalize(request_for):
    assert canonical(np.float64(2.5)) == canonical(2.5)
    assert canonical(np.int64(3)) == canonical(3)
