"""Golden-trajectory regression tests: the RNG stream must not drift.

The hot-path optimizations of the simulation engine (tuple-keyed event
calendar, incremental gate re-evaluation, cached samplers, prototype
cloning) are required to be **bit-identical** to the reference
implementation: same seed, same config -> same events in the same order
at the same times with the same KPIs, down to the last float bit.

The fixtures in ``tests/data/golden_eijoint.json`` were generated from
the pre-optimization implementation (PR 3 state) and are compared with
exact ``==`` — no tolerances.  Any change to the order in which the
simulator consumes its RNG stream, to event scheduling semantics, or to
cost accounting fails these tests.

Regenerate (only when a *deliberate*, documented semantics change is
made) with::

    PYTHONPATH=src python tests/test_golden_trajectory.py
"""

import json
import os

import numpy as np
import pytest

from repro.eijoint import (
    build_ei_joint_fmt,
    current_policy,
    default_cost_model,
    unmaintained,
)
from repro.simulation.executor import FMTSimulator, SimulationConfig
from repro.simulation.montecarlo import MonteCarlo

DATA_PATH = os.path.join(os.path.dirname(__file__), "data", "golden_eijoint.json")

#: (scenario label, strategy factory) pairs frozen into the fixture.
SCENARIOS = [
    ("current_policy", current_policy),
    ("unmaintained", unmaintained),
]

HORIZON = 50.0
TRAJECTORY_SEEDS = [2016, 2017, 2018]
SUMMARY_SEED = 2016
SUMMARY_RUNS = 40


def _trajectory_record(trajectory):
    """Exact, JSON-serializable image of one trajectory."""
    return {
        "failure_times": list(trajectory.failure_times),
        "downtime": trajectory.downtime,
        "costs": trajectory.costs.as_dict(),
        "n_inspections": trajectory.n_inspections,
        "n_preventive_actions": trajectory.n_preventive_actions,
        "n_corrective_replacements": trajectory.n_corrective_replacements,
        "events": [
            [e.time, e.component, e.kind, e.corrective, e.phase]
            for e in trajectory.events
        ],
    }


def _interval_record(interval):
    return [interval.estimate, interval.lower, interval.upper]


def _summary_record(summary):
    return {
        "n_runs": summary.n_runs,
        "unreliability": _interval_record(summary.unreliability),
        "failures_per_year": _interval_record(summary.failures_per_year),
        "availability": _interval_record(summary.availability),
        "cost_per_year": _interval_record(summary.cost_per_year),
    }


def collect_golden():
    """Simulate every fixture scenario and return the golden image."""
    golden = {}
    for label, strategy_factory in SCENARIOS:
        tree = build_ei_joint_fmt()
        config = SimulationConfig(
            horizon=HORIZON,
            cost_model=default_cost_model(),
            record_events=True,
        )
        simulator = FMTSimulator(tree, strategy_factory(), config=config)
        trajectories = {
            str(seed): _trajectory_record(
                simulator.simulate(np.random.default_rng(seed))
            )
            for seed in TRAJECTORY_SEEDS
        }
        mc = MonteCarlo(
            build_ei_joint_fmt(),
            strategy_factory(),
            horizon=HORIZON,
            cost_model=default_cost_model(),
            seed=SUMMARY_SEED,
        )
        summary = mc.run(SUMMARY_RUNS).summary
        golden[label] = {
            "trajectories": trajectories,
            "summary": _summary_record(summary),
        }
    return golden


@pytest.fixture(scope="module")
def golden():
    with open(DATA_PATH, encoding="utf-8") as handle:
        return json.load(handle)


@pytest.fixture(scope="module")
def actual():
    return collect_golden()


@pytest.mark.parametrize("label", [label for label, _ in SCENARIOS])
@pytest.mark.parametrize("seed", TRAJECTORY_SEEDS)
def test_trajectory_bit_identical(golden, actual, label, seed):
    expected = golden[label]["trajectories"][str(seed)]
    got = actual[label]["trajectories"][str(seed)]
    # Event stream: same events, same order, same times (exact floats).
    assert got["events"] == expected["events"]
    assert got["failure_times"] == expected["failure_times"]
    assert got["downtime"] == expected["downtime"]
    assert got["costs"] == expected["costs"]
    for counter in (
        "n_inspections",
        "n_preventive_actions",
        "n_corrective_replacements",
    ):
        assert got[counter] == expected[counter]


@pytest.mark.parametrize("label", [label for label, _ in SCENARIOS])
def test_kpi_summary_bit_identical(golden, actual, label):
    expected = golden[label]["summary"]
    got = actual[label]["summary"]
    assert got["n_runs"] == expected["n_runs"]
    for kpi in ("unreliability", "failures_per_year", "availability", "cost_per_year"):
        assert got[kpi] == expected[kpi], f"{label}: {kpi} drifted"


def test_event_stream_nonempty(actual):
    """Sanity: the fixture scenarios actually exercise the hot path."""
    for label, _ in SCENARIOS:
        records = actual[label]["trajectories"].values()
        assert any(r["events"] for r in records)
        assert any(r["failure_times"] for r in records)


if __name__ == "__main__":  # pragma: no cover - fixture regeneration
    os.makedirs(os.path.dirname(DATA_PATH), exist_ok=True)
    with open(DATA_PATH, "w", encoding="utf-8") as handle:
        json.dump(collect_golden(), handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {DATA_PATH}")
