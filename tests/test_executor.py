"""FMT trajectory executor: semantics of degradation, maintenance,
RDEP, and the system-failure response."""

import numpy as np
import pytest

from repro.core.builder import FMTBuilder
from repro.errors import ValidationError
from repro.maintenance.actions import clean, repair
from repro.maintenance.costs import CostModel
from repro.maintenance.modules import InspectionModule, RepairModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.executor import FMTSimulator, SimulationConfig


def _rng(seed=0):
    return np.random.default_rng(seed)


def _single_event_tree(phases=3, mean=3.0, threshold=2):
    builder = FMTBuilder("single")
    builder.degraded_event("w", phases=phases, mean=mean, threshold=threshold)
    builder.or_gate("top", ["w"])
    return builder.build("top")


def test_config_requires_horizon():
    tree = _single_event_tree()
    with pytest.raises(ValidationError):
        FMTSimulator(tree)


def test_config_conflicting_horizon_rejected():
    tree = _single_event_tree()
    with pytest.raises(ValidationError):
        FMTSimulator(tree, config=SimulationConfig(horizon=5.0), horizon=6.0)


def test_config_rejects_nonpositive_horizon():
    with pytest.raises(ValidationError):
        SimulationConfig(horizon=0.0)


def test_absorbing_single_failure():
    tree = _single_event_tree()
    sim = FMTSimulator(tree, MaintenanceStrategy.absorbing(), horizon=1000.0)
    trajectory = sim.simulate(_rng(1))
    assert trajectory.n_failures == 1
    assert trajectory.first_failure is not None
    # After the failure the system is down until the horizon.
    assert trajectory.downtime == pytest.approx(
        1000.0 - trajectory.first_failure
    )


def test_absorbing_first_failure_time_distribution():
    tree = _single_event_tree(phases=4, mean=8.0)
    sim = FMTSimulator(tree, MaintenanceStrategy.absorbing(), horizon=10_000.0)
    times = [sim.simulate(_rng(i)).first_failure for i in range(2000)]
    assert np.mean(times) == pytest.approx(8.0, rel=0.07)


def test_corrective_renewal_cycles():
    tree = _single_event_tree(phases=2, mean=2.0)
    sim = FMTSimulator(tree, MaintenanceStrategy.none(), horizon=2000.0)
    trajectory = sim.simulate(_rng(2))
    # Renewal cycle mean = component mean (instant repair) -> ~1000.
    assert trajectory.n_failures == pytest.approx(1000, rel=0.15)
    assert trajectory.downtime == 0.0


def test_system_repair_time_accumulates_downtime():
    tree = _single_event_tree(phases=1, mean=1.0, threshold=None)
    strategy = MaintenanceStrategy(
        "s", on_system_failure="replace", system_repair_time=0.5
    )
    sim = FMTSimulator(tree, strategy, horizon=3000.0)
    trajectory = sim.simulate(_rng(3))
    # Alternating up (mean 1.0) / down (0.5): availability ~ 2/3.
    assert trajectory.availability == pytest.approx(2.0 / 3.0, rel=0.1)


def test_inspection_prevents_failures():
    tree = _single_event_tree(phases=4, mean=4.0, threshold=2)
    module = InspectionModule("i", period=0.25, targets=["w"], action=clean())
    strategy = MaintenanceStrategy("s", inspections=(module,))
    with_inspection = FMTSimulator(tree, strategy, horizon=500.0)
    without = FMTSimulator(tree, MaintenanceStrategy.none(), horizon=500.0)
    n_with = with_inspection.simulate(_rng(4)).n_failures
    n_without = without.simulate(_rng(4)).n_failures
    assert n_with < n_without / 3


def test_inspection_counts_and_costs():
    tree = _single_event_tree()
    module = InspectionModule("i", period=1.0, targets=["w"], action=clean())
    strategy = MaintenanceStrategy("s", inspections=(module,))
    config = SimulationConfig(
        horizon=10.0, cost_model=CostModel(inspection_visit=7.0)
    )
    trajectory = FMTSimulator(tree, strategy, config=config).simulate(_rng(5))
    assert trajectory.n_inspections == 10
    assert trajectory.costs.inspections == pytest.approx(70.0)


def test_inspection_offset_controls_first_visit():
    tree = _single_event_tree()
    module = InspectionModule(
        "i", period=100.0, targets=["w"], action=clean(), offset=1.0
    )
    strategy = MaintenanceStrategy("s", inspections=(module,))
    trajectory = FMTSimulator(tree, strategy, horizon=10.0).simulate(_rng(6))
    assert trajectory.n_inspections == 1


def test_partial_restoration_weaker_than_full():
    tree = _single_event_tree(phases=6, mean=6.0, threshold=3)
    full = MaintenanceStrategy(
        "full",
        inspections=(
            InspectionModule("i", period=0.5, targets=["w"], action=clean()),
        ),
    )
    partial = MaintenanceStrategy(
        "partial",
        inspections=(
            InspectionModule(
                "i", period=0.5, targets=["w"], action=repair(restore_phases=1)
            ),
        ),
    )
    n_full = sum(
        FMTSimulator(tree, full, horizon=300.0).simulate(_rng(i)).n_failures
        for i in range(5)
    )
    n_partial = sum(
        FMTSimulator(tree, partial, horizon=300.0).simulate(_rng(i)).n_failures
        for i in range(5)
    )
    assert n_full < n_partial


def test_inspection_detects_latent_component_failure():
    # top = 2-of-2, so a single failed component is latent.
    builder = FMTBuilder("latent")
    builder.degraded_event("a", phases=2, mean=1.0, threshold=1)
    builder.degraded_event("b", phases=2, mean=1e6, threshold=1)
    builder.and_gate("top", ["a", "b"])
    tree = builder.build("top")
    module = InspectionModule(
        "i", period=1.0, targets=["a"], action=clean(), detect_failures=True
    )
    strategy = MaintenanceStrategy("s", inspections=(module,))
    config = SimulationConfig(
        horizon=50.0,
        cost_model=CostModel(action_costs={"replace": 10.0}),
        record_events=True,
    )
    trajectory = FMTSimulator(tree, strategy, config=config).simulate(_rng(7))
    corrective = [
        e for e in trajectory.events if e.kind == "replace" and e.corrective
    ]
    assert trajectory.n_corrective_replacements == len(corrective)
    assert len(corrective) > 10
    assert trajectory.costs.corrective > 0.0


def test_detect_failures_false_ignores_failed_component():
    builder = FMTBuilder("latent")
    builder.degraded_event("a", phases=2, mean=1.0, threshold=1)
    builder.degraded_event("b", phases=2, mean=1e6, threshold=1)
    builder.and_gate("top", ["a", "b"])
    tree = builder.build("top")
    module = InspectionModule(
        "i", period=1.0, targets=["a"], action=clean(), detect_failures=False
    )
    strategy = MaintenanceStrategy("s", inspections=(module,))
    trajectory = FMTSimulator(tree, strategy, horizon=50.0).simulate(_rng(8))
    assert trajectory.n_corrective_replacements == 0


def test_inspection_delay_allows_failures_to_slip_through():
    tree = _single_event_tree(phases=3, mean=1.5, threshold=1)
    immediate = MaintenanceStrategy(
        "now",
        inspections=(
            InspectionModule("i", period=0.5, targets=["w"], action=clean()),
        ),
    )
    delayed = MaintenanceStrategy(
        "later",
        inspections=(
            InspectionModule(
                "i", period=0.5, targets=["w"], action=clean(), delay=0.4
            ),
        ),
    )
    n_now = sum(
        FMTSimulator(tree, immediate, horizon=200.0).simulate(_rng(i)).n_failures
        for i in range(5)
    )
    n_later = sum(
        FMTSimulator(tree, delayed, horizon=200.0).simulate(_rng(i)).n_failures
        for i in range(5)
    )
    assert n_later > n_now


def test_repair_module_renews_periodically():
    tree = _single_event_tree(phases=4, mean=40.0, threshold=None)
    module = RepairModule("renew", period=5.0, targets=["w"])
    strategy = MaintenanceStrategy("s", repairs=(module,))
    config = SimulationConfig(
        horizon=100.0, cost_model=CostModel(action_costs={"replace": 3.0})
    )
    trajectory = FMTSimulator(tree, strategy, config=config).simulate(_rng(9))
    assert trajectory.n_preventive_actions == 20
    assert trajectory.costs.preventive == pytest.approx(60.0)
    # Renewal every 5y of a 40y-mean Erlang-4 keeps failures very rare.
    assert trajectory.n_failures <= 1


def test_rdep_accelerates_degradation():
    def build(factor):
        builder = FMTBuilder("rdep")
        builder.degraded_event("w", phases=3, mean=30.0)
        builder.basic_event("trigger_evt", mean=0.01)
        # Trigger fails almost immediately but does not fail the top.
        builder.and_gate("guard", ["trigger_evt", "w"])
        builder.or_gate("top", ["w", "guard"])
        if factor > 1.0:
            builder.rdep("d", trigger="trigger_evt", targets=["w"], factor=factor)
        return builder.build("top")

    slow = FMTSimulator(
        build(1.0), MaintenanceStrategy.absorbing(), horizon=1e5
    )
    fast = FMTSimulator(
        build(10.0), MaintenanceStrategy.absorbing(), horizon=1e5
    )
    mean_slow = np.mean([slow.simulate(_rng(i)).first_failure for i in range(300)])
    mean_fast = np.mean([fast.simulate(_rng(i)).first_failure for i in range(300)])
    assert mean_slow == pytest.approx(30.0, rel=0.15)
    assert mean_fast == pytest.approx(3.0, rel=0.25)


def test_rdep_deactivates_when_trigger_repaired():
    # Trigger is renewed every year; the acceleration must switch off.
    builder = FMTBuilder("rdep_toggle")
    builder.degraded_event("w", phases=2, mean=100.0)
    builder.degraded_event("t", phases=1, mean=0.5, threshold=1)
    builder.and_gate("guard", ["t", "w"])
    builder.or_gate("top", ["w", "guard"])
    builder.rdep("d", trigger="t", targets=["w"], factor=50.0)
    tree = builder.build("top")
    module = InspectionModule("i", period=0.2, targets=["t"])
    strategy = MaintenanceStrategy(
        "s", inspections=(module,), on_system_failure="none"
    )
    always_on = FMTSimulator(tree, MaintenanceStrategy.absorbing(), horizon=1e4)
    toggled = FMTSimulator(tree, strategy, horizon=1e4)
    mean_on = np.mean(
        [always_on.simulate(_rng(i)).first_failure for i in range(200)]
    )
    mean_toggled = np.mean(
        [toggled.simulate(_rng(i)).first_failure for i in range(200)]
    )
    # With the trigger constantly repaired, degradation is much slower.
    assert mean_toggled > 3.0 * mean_on


def test_failure_costs_charged():
    tree = _single_event_tree(phases=1, mean=1.0, threshold=None)
    config = SimulationConfig(
        horizon=100.0,
        cost_model=CostModel(system_failure=11.0),
    )
    trajectory = FMTSimulator(
        tree, MaintenanceStrategy.none(), config=config
    ).simulate(_rng(10))
    assert trajectory.costs.failures == pytest.approx(
        11.0 * trajectory.n_failures
    )


def test_downtime_cost_charged():
    tree = _single_event_tree(phases=1, mean=1.0, threshold=None)
    strategy = MaintenanceStrategy(
        "s", on_system_failure="replace", system_repair_time=0.1
    )
    config = SimulationConfig(
        horizon=100.0, cost_model=CostModel(downtime_per_year=1000.0)
    )
    trajectory = FMTSimulator(tree, strategy, config=config).simulate(_rng(11))
    assert trajectory.costs.downtime == pytest.approx(
        1000.0 * trajectory.downtime, rel=1e-6
    )


def test_events_recorded_only_when_enabled():
    tree = _single_event_tree(phases=1, mean=0.5, threshold=None)
    quiet = FMTSimulator(
        tree,
        MaintenanceStrategy.none(),
        config=SimulationConfig(horizon=20.0, record_events=False),
    ).simulate(_rng(12))
    verbose = FMTSimulator(
        tree,
        MaintenanceStrategy.none(),
        config=SimulationConfig(horizon=20.0, record_events=True),
    ).simulate(_rng(12))
    assert quiet.events == []
    kinds = {event.kind for event in verbose.events}
    assert {"failure", "system_failure", "system_restored"} <= kinds


def test_determinism_same_seed_same_trajectory():
    tree = _single_event_tree()
    module = InspectionModule("i", period=0.5, targets=["w"], action=clean())
    strategy = MaintenanceStrategy("s", inspections=(module,))
    sim = FMTSimulator(tree, strategy, horizon=200.0)
    first = sim.simulate(_rng(99))
    second = sim.simulate(_rng(99))
    assert first.failure_times == second.failure_times
    assert first.n_inspections == second.n_inspections


def test_pand_order_sensitivity():
    builder = FMTBuilder("pand")
    builder.basic_event("first", mean=1.0)
    builder.basic_event("second", mean=1.0)
    builder.pand_gate("top", ["first", "second"])
    tree = builder.build("top")
    sim = FMTSimulator(tree, MaintenanceStrategy.absorbing(), horizon=1e4)
    failures = sum(
        1 for i in range(400) if sim.simulate(_rng(i)).n_failures > 0
    )
    # Both events eventually fail; order is correct half the time.
    assert failures == pytest.approx(200, abs=45)
