"""Run telemetry: spans, progress reporting, Prometheus exposition.

Covers the PR-6 observability subsystem end to end: hierarchical span
tracing across the worker pool (including the cross-process context
round-trip), the worker-metric fold that makes ``--profile`` truthful
for parallel runs, live progress/convergence reporting, the Prometheus
text endpoint, and the instrumentation overhead budget.
"""

import io
import json
import math
import pickle
import urllib.request
from collections import Counter as TallyCounter

import pytest

from repro.cli import main
from repro.dsl import save_file
from repro.observability import (
    Instrumentation,
    JsonlProgressReporter,
    MetricsRegistry,
    MetricsServer,
    ProgressEvent,
    ProgressReporter,
    Span,
    SpanCollector,
    SpanContext,
    TerminalProgressReporter,
    render_prometheus,
    use_progress,
)
from repro.observability import instrumentation as obs
from repro.observability import spans as sp
from repro.observability.exposition import CONTENT_TYPE, mangle_metric_name
from repro.observability.progress import current_progress, tee
from repro.simulation.montecarlo import MonteCarlo


# ----------------------------------------------------------------------
# Spans
# ----------------------------------------------------------------------
def test_span_context_roundtrips_dict_and_pickle():
    context = SpanContext(trace_id="ab" * 16, span_id="cd" * 8)
    assert SpanContext.from_dict(context.to_dict()) == context
    assert pickle.loads(pickle.dumps(context)) == context


def test_span_without_collector_is_shared_noop():
    with sp.span("untraced") as opened:
        assert opened is sp.NULL_SPAN
        assert sp.current_context() is None
    with sp.span("also-untraced") as again:
        assert again is opened


def test_nested_spans_form_one_connected_trace():
    collector = SpanCollector()
    with sp.use(collector):
        with sp.span("outer", {"k": 1}) as outer:
            assert sp.current_context() == outer.context
            with sp.span("inner"):
                pass
        assert sp.current_context() is None
    inner, outer = collector.records  # children complete first
    assert inner["name"] == "inner" and outer["name"] == "outer"
    assert inner["trace_id"] == outer["trace_id"]
    assert inner["parent_id"] == outer["span_id"]
    assert outer["parent_id"] is None
    assert outer["attributes"] == {"k": 1}
    assert inner["duration_seconds"] <= outer["duration_seconds"]
    assert all(r["status"] == "ok" for r in collector.records)


def test_span_error_status_and_propagation():
    collector = SpanCollector()
    with pytest.raises(RuntimeError):
        with sp.span("doomed", collector=collector):
            raise RuntimeError("boom")
    (record,) = collector.records
    assert record["status"] == "error"


def test_worker_style_record_parents_across_the_wire():
    collector = SpanCollector()
    with sp.use(collector):
        with sp.span("dispatch") as parent:
            shipped = parent.context.to_dict()  # travels with the task
    worker_span = Span.start("worker.chunk", parent=shipped,
                             attributes={"chunk": 0})
    record = worker_span.end().to_dict()  # travels back with the result
    collector.add_record(record)
    dispatch = [r for r in collector.records if r["name"] == "dispatch"][0]
    assert record["trace_id"] == dispatch["trace_id"]
    assert record["parent_id"] == dispatch["span_id"]


def test_collector_writes_valid_jsonl(tmp_path):
    collector = SpanCollector()
    with sp.span("a", collector=collector):
        pass
    path = tmp_path / "spans.jsonl"
    assert collector.write_jsonl_file(path) == 1
    (line,) = path.read_text().splitlines()
    record = json.loads(line)
    assert record["record"] == "span"
    assert record["schema_version"] == sp.SPAN_SCHEMA_VERSION
    assert record["end_time"] >= record["start_time"]


# ----------------------------------------------------------------------
# Progress reporting
# ----------------------------------------------------------------------
def test_progress_event_to_dict_drops_none_fields():
    event = ProgressEvent(phase="mc.run", completed=10, total=100)
    record = event.to_dict()
    assert record["record"] == "progress"
    assert record["completed"] == 10
    assert "eta_seconds" not in record and "estimate" not in record


def test_terminal_reporter_formats_convergence_line():
    line = TerminalProgressReporter.format(
        ProgressEvent(
            phase="mc.run_to_precision", completed=400,
            elapsed_seconds=2.0, rate_per_sec=200.0, estimate=1.5,
            ci_half_width=0.12, relative_half_width=0.08, target=0.05,
        )
    )
    assert "mc.run_to_precision:" in line
    assert "400 trajectories" in line
    assert "ci-half-width 0.12" in line
    assert "rel 0.08 -> target 0.05" in line
    done = TerminalProgressReporter.format(
        ProgressEvent(phase="mc.run", completed=5, total=5, done=True)
    )
    assert "5/5 (100%)" in done and done.endswith("done")


class _TtyStringIO(io.StringIO):
    """A StringIO that claims to be an interactive terminal."""

    def isatty(self):
        return True


def test_terminal_reporter_throttles_but_always_paints_done():
    buffer = _TtyStringIO()
    reporter = TerminalProgressReporter(stream=buffer, min_interval=3600.0)
    for completed in (1, 2, 3):
        reporter.update(ProgressEvent(phase="p", completed=completed, total=4))
    reporter.update(ProgressEvent(phase="p", completed=4, total=4, done=True))
    reporter.close()
    text = buffer.getvalue()
    assert reporter.events_seen == 4
    assert text.count("\r") == 2  # first paint + forced done paint
    assert text.endswith("done\x1b[K\n")


def test_terminal_reporter_non_tty_emits_plain_lines():
    """Piped/captured streams must never see \\r or ANSI escapes."""
    buffer = io.StringIO()  # StringIO.isatty() is False
    reporter = TerminalProgressReporter(stream=buffer, min_interval=3600.0)
    for completed in (1, 2, 3):
        reporter.update(ProgressEvent(phase="p", completed=completed, total=4))
    reporter.update(ProgressEvent(phase="p", completed=4, total=4, done=True))
    reporter.close()
    text = buffer.getvalue()
    assert reporter.is_tty is False
    assert "\r" not in text and "\x1b" not in text
    lines = text.splitlines()
    assert len(lines) == 2  # first paint + forced done paint (throttled)
    assert lines[0].startswith("p: 1/4")
    assert lines[-1].endswith("done")


def test_terminal_reporter_non_tty_default_throttle_is_coarser():
    assert TerminalProgressReporter(stream=io.StringIO()).min_interval == 1.0


def test_progress_event_to_dict_drops_non_finite_floats():
    event = ProgressEvent(
        phase="p", completed=1, ci_half_width=math.inf,
        relative_half_width=math.nan, estimate=2.5,
    )
    record = event.to_dict()
    assert "ci_half_width" not in record
    assert "relative_half_width" not in record
    assert record["estimate"] == 2.5
    json.dumps(record, allow_nan=False)  # strict-JSON serializable


def test_jsonl_reporter_requires_exactly_one_sink(tmp_path):
    with pytest.raises(ValueError):
        JsonlProgressReporter()
    with pytest.raises(ValueError):
        JsonlProgressReporter(stream=io.StringIO(), path=tmp_path / "p.jsonl")
    path = tmp_path / "progress.jsonl"
    reporter = JsonlProgressReporter(path=path)
    reporter.update(ProgressEvent(phase="p", completed=1, total=2))
    reporter.close()
    (line,) = path.read_text().splitlines()
    assert json.loads(line)["phase"] == "p"


def test_tee_fans_out_and_ambient_scoping():
    first, second = io.StringIO(), io.StringIO()
    combined = tee(
        JsonlProgressReporter(stream=first),
        JsonlProgressReporter(stream=second),
    )
    assert isinstance(combined, ProgressReporter)
    assert current_progress() is None
    with use_progress(combined):
        assert current_progress() is combined
        current_progress().update(ProgressEvent(phase="p", completed=1))
    assert current_progress() is None
    assert first.getvalue() == second.getvalue() != ""
    single = JsonlProgressReporter(stream=io.StringIO())
    assert tee(single) is single


# ----------------------------------------------------------------------
# Driver integration: run / run_to_precision / run_parallel
# ----------------------------------------------------------------------
def test_run_emits_progress_and_stays_bit_identical(
    maintained_tree, inspection_strategy
):
    silent = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=9
    ).run(60)
    buffer = io.StringIO()
    watched = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=9
    ).run(60, progress=JsonlProgressReporter(stream=buffer))
    assert watched.summary == silent.summary
    events = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert events[-1]["done"] is True
    assert events[-1]["completed"] == 60
    assert all(e["total"] == 60 for e in events)
    completed = [e["completed"] for e in events]
    assert completed == sorted(completed)


def test_run_keep_trajectories_with_progress_matches(
    maintained_tree, inspection_strategy
):
    silent = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=4
    ).run(20, keep_trajectories=True)
    watched = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=4
    ).run(
        20,
        keep_trajectories=True,
        progress=JsonlProgressReporter(stream=io.StringIO()),
    )
    assert watched.summary == silent.summary
    assert len(watched.trajectories) == 20


def test_run_to_precision_reports_convergence(
    maintained_tree, inspection_strategy
):
    from repro.stats.sequential import RelativePrecisionRule

    buffer = io.StringIO()
    collector = SpanCollector()
    rule = RelativePrecisionRule(relative_error=0.2, max_samples=2000)
    with sp.use(collector):
        result = MonteCarlo(
            maintained_tree, inspection_strategy, horizon=20.0, seed=5
        ).run_to_precision(
            rule=rule,
            batch_size=100,
            keep_trajectories=False,
            progress=JsonlProgressReporter(stream=buffer),
        )
    events = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert events[-1]["done"] is True
    assert events[-1]["completed"] == result.n_runs
    assert events[-1]["target"] == 0.2
    converged = [e for e in events if "ci_half_width" in e]
    assert converged, "no convergence fields reported"
    assert all(e["phase"] == "mc.run_to_precision" for e in events)
    names = [r["name"] for r in collector.records]
    assert names == ["mc.run_to_precision"]
    assert collector.records[0]["attributes"]["n_samples"] == result.n_runs


def test_run_parallel_roundtrip_merges_workers_and_connects_spans(
    maintained_tree, inspection_strategy
):
    serial = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=11
    ).run(80)
    instr = Instrumentation()
    collector = SpanCollector()
    buffer = io.StringIO()
    with sp.use(collector), use_progress(JsonlProgressReporter(stream=buffer)):
        parallel = MonteCarlo(
            maintained_tree, inspection_strategy, horizon=20.0, seed=11,
            instrumentation=instr,
        ).run_parallel(80, processes=2)
    assert parallel.summary == serial.summary
    # Worker-side counters folded into the parent registry.
    counters = instr.registry.to_dict()["counters"]
    assert counters[obs.SIM_TRAJECTORIES] == 80
    gauges = instr.registry.to_dict()["gauges"]
    assert gauges[obs.SIM_WORKERS]["last"] >= 1
    per_worker = [n for n in gauges if n.startswith(obs.SIM_WORKER_PREFIX + ".")]
    assert any(n.endswith(".trajectories") for n in per_worker)
    total_by_worker = sum(
        gauges[n]["last"] for n in per_worker if n.endswith(".trajectories")
    )
    assert total_by_worker == 80
    # One connected trace: every worker chunk hangs off mc.run_parallel.
    records = collector.records
    names = TallyCounter(r["name"] for r in records)
    assert names["mc.run_parallel"] == 1
    assert names["worker.chunk"] >= 1
    assert len({r["trace_id"] for r in records}) == 1
    ids = {r["span_id"] for r in records}
    chunks = [r for r in records if r["name"] == "worker.chunk"]
    parent = [r for r in records if r["name"] == "mc.run_parallel"][0]
    assert all(c["parent_id"] == parent["span_id"] for c in chunks)
    assert all(
        r["parent_id"] is None or r["parent_id"] in ids for r in records
    )
    assert sum(c["attributes"]["n_trajectories"] for c in chunks) == 80
    # Progress saw the fan-out complete.
    events = [json.loads(line) for line in buffer.getvalue().splitlines()]
    assert events[-1]["done"] is True and events[-1]["completed"] == 80


def test_run_parallel_without_telemetry_unchanged(
    maintained_tree, inspection_strategy
):
    plain = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=3
    ).run_parallel(40, processes=2)
    serial = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=3
    ).run(40)
    assert plain.summary == serial.summary


def test_rare_event_progress_and_span():
    from repro.core.builder import FMTBuilder
    from repro.maintenance.strategy import MaintenanceStrategy
    from repro.rareevent.estimator import RareEventConfig

    builder = FMTBuilder("markovian")
    builder.degraded_event("left", phases=3, mean=30.0)
    builder.degraded_event("right", phases=2, mean=20.0)
    builder.and_gate("top", ["left", "right"])
    tree = builder.build("top")
    config = RareEventConfig(effort=50, n_replications=3, n_levels=2)
    buffer = io.StringIO()
    collector = SpanCollector()
    mc = MonteCarlo(
        tree,
        MaintenanceStrategy("absorbing", on_system_failure="none"),
        horizon=8.0,
        seed=13,
        rare_event=config,
    )
    with sp.use(collector), use_progress(JsonlProgressReporter(stream=buffer)):
        mc.run_rare_event()
    names = [r["name"] for r in collector.records]
    assert names == ["mc.run_rare_event"]
    assert collector.records[0]["attributes"]["method"] == config.method
    events = [json.loads(line) for line in buffer.getvalue().splitlines()]
    units = [e for e in events if e["phase"] == "rare.units"]
    assert len(units) == config.n_units
    assert units[-1]["done"] is True


# ----------------------------------------------------------------------
# Prometheus exposition
# ----------------------------------------------------------------------
def test_mangle_metric_name_is_stable():
    assert mangle_metric_name("sim.worker.0.chunks") == "repro_sim_worker_0_chunks"
    assert mangle_metric_name("sim.trajectories", namespace="") == "sim_trajectories"
    assert mangle_metric_name("0weird", namespace="") == "_0weird"


def test_render_prometheus_families():
    registry = MetricsRegistry()
    registry.counter("sim.trajectories").inc(7)
    registry.gauge("sim.workers").set(2)
    registry.gauge("sim.workers").set(4)
    registry.timer("sim.simulate.seconds").observe(0.5)
    text = registry.render_prometheus()
    assert "# TYPE repro_sim_trajectories_total counter" in text
    assert "repro_sim_trajectories_total 7.0" in text
    assert "# TYPE repro_sim_workers gauge" in text
    assert "repro_sim_workers 4.0" in text
    assert "repro_sim_workers_min 2.0" in text
    assert "repro_sim_workers_max 4.0" in text
    assert "# TYPE repro_sim_simulate_seconds summary" in text
    assert 'repro_sim_simulate_seconds{quantile="0.5"} 0.5' in text
    assert "repro_sim_simulate_seconds_count 1.0" in text
    assert text.endswith("\n")


def test_render_prometheus_accepts_legacy_bare_gauges():
    text = render_prometheus(
        {"counters": {}, "gauges": {"depth": 3.0}, "timers": {}}
    )
    assert "repro_depth 3.0" in text


def test_metrics_server_scrapes_live_registry():
    registry = MetricsRegistry()
    registry.counter("sim.trajectories").inc(42)
    with MetricsServer(registry, port=0).start() as server:
        base = f"http://{server.host}:{server.port}"
        with urllib.request.urlopen(f"{base}/metrics") as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == CONTENT_TYPE
            body = response.read().decode("utf-8")
        assert "repro_sim_trajectories_total 42.0" in body
        with urllib.request.urlopen(f"{base}/healthz") as response:
            assert json.loads(response.read()) == {"status": "ok"}
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(f"{base}/other")
        assert excinfo.value.code == 404
        assert server.requests_served == 3


def test_metrics_server_callable_source_rereads_per_scrape(tmp_path):
    path = tmp_path / "metrics.json"
    registry = MetricsRegistry()
    registry.counter("n").inc(1)
    registry.write_json(path)

    def snapshot():
        return json.loads(path.read_text())

    with MetricsServer(snapshot, port=0).start() as server:
        url = f"http://{server.host}:{server.port}/metrics"
        with urllib.request.urlopen(url) as response:
            assert b"repro_n_total 1.0" in response.read()
        registry.counter("n").inc(1)
        registry.write_json(path)  # the file changed between scrapes
        with urllib.request.urlopen(url) as response:
            assert b"repro_n_total 2.0" in response.read()


# ----------------------------------------------------------------------
# CLI wiring
# ----------------------------------------------------------------------
def test_cli_progress_and_trace_out(tmp_path, capsys, maintained_tree):
    model = tmp_path / "model.fmt"
    save_file(maintained_tree, model)
    progress_path = tmp_path / "progress.jsonl"
    trace_path = tmp_path / "trace.jsonl"
    code = main([
        "simulate", str(model), "--runs", "120", "--horizon", "10",
        "--progress-out", str(progress_path), "--trace-out", str(trace_path),
    ])
    assert code == 0
    captured = capsys.readouterr()
    assert "span records written" in captured.err
    events = [
        json.loads(line) for line in progress_path.read_text().splitlines()
    ]
    assert events and events[-1]["done"] is True
    spans = [json.loads(line) for line in trace_path.read_text().splitlines()]
    names = {r["name"] for r in spans}
    assert {"study.request", "mc.run"} <= names
    ids = {r["span_id"] for r in spans}
    assert all(
        r["parent_id"] is None or r["parent_id"] in ids for r in spans
    )


def test_cli_metrics_serve_requires_readable_snapshot(tmp_path, capsys):
    assert main(["metrics-serve"]) == 2
    assert "missing metrics JSON path" in capsys.readouterr().err
    missing = tmp_path / "nope.json"
    assert main(["metrics-serve", str(missing), "--port", "0"]) == 2
    assert "cannot read" in capsys.readouterr().err


def test_cli_rejects_unwritable_telemetry_paths(tmp_path, capsys):
    bad = tmp_path / "not-a-dir" / "out.jsonl"
    assert main(["table1", "--progress-out", str(bad)]) == 2
    assert "--progress-out" in capsys.readouterr().err
    assert main(["table1", "--trace-out", str(bad)]) == 2
    assert "--trace-out" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Overhead budget
# ----------------------------------------------------------------------
def test_full_telemetry_overhead_within_five_percent():
    """Spans + progress + metrics together must cost <= 5% throughput.

    Measured on the EI-joint current-policy model (the paper's main
    workload).  The legs are compared on CPU time (``process_time``) so
    scheduler preemption on shared machines does not masquerade as
    telemetry cost; plain and instrumented runs are interleaved and the
    per-leg minimum taken, the standard noise-robust estimator for
    micro-benchmarks.  The budget is re-checked on fresh measurements
    before failing, because a frequency-scaling shift mid-test can
    still exceed 5% of a sub-second leg.
    """
    import time

    from repro.eijoint.model import build_ei_joint_fmt
    from repro.eijoint.strategies import current_policy

    tree = build_ei_joint_fmt()
    policy = current_policy()
    n_runs = 300

    def measure(instrumented):
        if instrumented:
            mc = MonteCarlo(
                tree, policy, horizon=15.0, seed=2016,
                instrumentation=Instrumentation(),
            )
            collector = SpanCollector()
            reporter = JsonlProgressReporter(stream=io.StringIO())
            start = time.process_time()
            with sp.use(collector), use_progress(reporter):
                mc.run(n_runs)
            return time.process_time() - start
        mc = MonteCarlo(tree, policy, horizon=15.0, seed=2016)
        start = time.process_time()
        mc.run(n_runs)
        return time.process_time() - start

    measure(False), measure(True)  # warm caches outside the measurement
    overhead = None
    for _ in range(3):
        plain, full = [], []
        for _ in range(5):
            plain.append(measure(False))
            full.append(measure(True))
        overhead = min(full) / min(plain) - 1.0
        if overhead <= 0.05:
            break
    assert overhead <= 0.05, (
        f"full telemetry costs {overhead:.1%} throughput (budget 5%)"
    )
