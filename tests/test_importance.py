"""Importance measures."""

import math

import pytest

from repro.analysis.importance import birnbaum_importance, importance_table
from repro.analysis.unreliability import unreliability
from repro.core.builder import FMTBuilder
from repro.errors import AnalysisError, UnsupportedModelError


def test_or_tree_birnbaum_closed_form(simple_or_tree):
    t = 1.0
    table = importance_table(simple_or_tree, t)
    # For OR: dP/dp_a = 1 - p_b.
    p_b = simple_or_tree.basic_events["b"].lifetime_cdf(t)
    assert table["a"].birnbaum == pytest.approx(1.0 - p_b)


def test_and_tree_birnbaum_closed_form(simple_and_tree):
    t = 1.0
    table = importance_table(simple_and_tree, t)
    p_b = simple_and_tree.basic_events["b"].lifetime_cdf(t)
    assert table["a"].birnbaum == pytest.approx(p_b)


def test_birnbaum_importance_shortcut(simple_or_tree):
    values = birnbaum_importance(simple_or_tree, 1.0)
    table = importance_table(simple_or_tree, 1.0)
    assert values == {
        name: measure.birnbaum for name, measure in table.items()
    }


def test_fussell_vesely_in_unit_interval(layered_tree):
    table = importance_table(layered_tree, 2.0)
    for measure in table.values():
        assert -1e-12 <= measure.fussell_vesely <= 1.0 + 1e-12


def test_raw_at_least_one_for_coherent(layered_tree):
    table = importance_table(layered_tree, 2.0)
    for measure in table.values():
        assert measure.raw >= 1.0 - 1e-12


def test_rrw_at_least_one_for_coherent(layered_tree):
    table = importance_table(layered_tree, 2.0)
    for measure in table.values():
        assert measure.rrw >= 1.0 - 1e-12


def test_criticality_formula(voting_tree):
    t = 3.0
    top = unreliability(voting_tree, t)
    table = importance_table(voting_tree, t)
    for name, measure in table.items():
        expected = measure.birnbaum * measure.probability / top
        assert measure.criticality == pytest.approx(expected)


def test_single_point_of_failure_dominates():
    builder = FMTBuilder("spof")
    builder.basic_event("spof", rate=0.1)
    builder.basic_event("red_a", rate=0.1)
    builder.basic_event("red_b", rate=0.1)
    builder.and_gate("redundant", ["red_a", "red_b"])
    builder.or_gate("top", ["spof", "redundant"])
    tree = builder.build("top")
    table = importance_table(tree, 1.0)
    assert table["spof"].birnbaum > table["red_a"].birnbaum


def test_zero_probability_time_rejected(simple_or_tree):
    with pytest.raises(AnalysisError):
        importance_table(simple_or_tree, 0.0)


def test_rdep_tree_rejected(maintained_tree):
    with pytest.raises(UnsupportedModelError):
        importance_table(maintained_tree, 1.0)


def test_rrw_infinite_for_only_cut_set():
    builder = FMTBuilder("only")
    builder.basic_event("x", rate=0.5)
    builder.or_gate("top", ["x"])
    tree = builder.build("top")
    table = importance_table(tree, 1.0)
    assert math.isinf(table["x"].rrw)


def test_eijoint_dust_most_important():
    from repro.eijoint import build_ei_joint_fmt

    tree = build_ei_joint_fmt().without_dependencies()
    table = importance_table(tree, 5.0)
    ranked = sorted(
        table.values(), key=lambda m: m.fussell_vesely, reverse=True
    )
    # The fastest-degrading mode dominates early-life failures.
    assert ranked[0].event == "ferrous_dust"
