"""The analysis service end to end: HTTP, cache fast path, backpressure.

The acceptance property of the service (ISSUE 9): submitting a study
as a JSON payload over HTTP twice yields byte-identical results to
calling :class:`~repro.studies.StudyRunner` in-process with the same
seed, and the second request is served from the StudyKey cache without
simulating a single new trajectory.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.maintenance.strategy import MaintenanceStrategy
from repro.observability.instrumentation import Instrumentation
from repro.service.app import StudyService, serve_app
from repro.service.jobs import JobQueue, QueueFull
from repro.service.wire import decode_wire, dumps, encode_wire
from repro.studies.runner import StudyRequest, StudyRunner


def _request(tree, n_runs=40, seed=11, **kwargs) -> StudyRequest:
    return StudyRequest(
        tree=tree,
        strategy=MaintenanceStrategy.none(),
        horizon=4.0,
        seed=seed,
        n_runs=n_runs,
        **kwargs,
    )


# ----------------------------------------------------------------------
# Transport-free: drive StudyService.handle() directly
# ----------------------------------------------------------------------


@pytest.fixture
def service():
    service = StudyService(max_pending=8, workers=1)
    yield service
    service.close()


def _submit(service, request, raw=None):
    body = raw if raw is not None else dumps(request).encode("utf-8")
    return service.handle("POST", "/v1/studies", {}, body)


def _wait_done(service, job_id, timeout=30.0):
    job = service.jobs.get(job_id)
    assert job is not None
    assert job.wait(timeout), f"job {job_id} did not finish"
    return job


def test_submit_poll_and_cached_resubmit(service, simple_or_tree):
    request = _request(simple_or_tree)
    first = _submit(service, request)
    assert first.status == 202
    submitted = json.loads(first.body)
    assert submitted["status"] == "queued"
    assert submitted["cached"] is False
    assert submitted["study_key"] == request.key().digest

    _wait_done(service, submitted["job_id"])
    status = service.handle(
        "GET", submitted["location"], {}, b""
    )
    assert status.status == 200
    done = json.loads(status.body)
    assert done["status"] == "done"
    assert done["result"]["kind"] == "kpi_summary"

    # The resubmission is synchronous: 200, cached, no new job.
    second = _submit(service, request)
    assert second.status == 200
    cached = json.loads(second.body)
    assert cached["cached"] is True
    assert cached["result"] == done["result"]


def test_cached_result_byte_identical_to_in_process(simple_or_tree):
    request = _request(simple_or_tree)
    # Ground truth: the runner called in-process.
    runner = StudyRunner()
    try:
        expected = runner.summary(request)
    finally:
        runner.close()

    instrumentation = Instrumentation()
    service = StudyService(workers=1, instrumentation=instrumentation)
    try:
        submitted = json.loads(_submit(service, request).body)
        _wait_done(service, submitted["job_id"])
        first = _submit(service, request)
        second = _submit(service, request)
        fresh_after_first = instrumentation.registry.to_dict()["counters"][
            "study.fresh_trajectories"
        ]
        third = _submit(service, request)
        fresh_after_more = instrumentation.registry.to_dict()["counters"][
            "study.fresh_trajectories"
        ]
    finally:
        service.close()

    assert first.status == second.status == third.status == 200
    assert first.body == second.body == third.body  # byte-identical
    # ... and equal to the in-process result, wire-encoded.
    assert json.loads(first.body)["result"] == encode_wire(expected)
    # Cache hits simulate nothing.
    assert fresh_after_more == fresh_after_first == request.n_runs


def test_identical_inflight_submissions_share_a_job(simple_or_tree):
    # One worker busy on a long job; identical submissions must attach
    # to the queued job rather than multiply.
    service = StudyService(max_pending=8, workers=1)
    try:
        blocker = _request(simple_or_tree, n_runs=4000, seed=1)
        target = _request(simple_or_tree, n_runs=50, seed=2)
        _submit(service, blocker)
        a = json.loads(_submit(service, target).body)
        b = json.loads(_submit(service, target).body)
        assert a["job_id"] == b["job_id"]
        assert a["deduplicated"] is False
        assert b["deduplicated"] is True
    finally:
        service.close()


def test_backpressure_429_with_retry_after(simple_or_tree):
    # Stall the single worker with an event so the queue can fill.
    release = threading.Event()

    started = threading.Event()

    class _StallRunner(StudyRunner):
        def summary(self, request):
            started.set()
            release.wait(30.0)
            return super().summary(request)

    service = StudyService(
        _StallRunner(), max_pending=2, workers=1, retry_after=2.5
    )
    try:
        # First submit occupies the worker (wait until it actually
        # dequeues); the next two fill the queue.
        response = _submit(service, _request(simple_or_tree, seed=1))
        assert response.status == 202
        assert started.wait(10.0)
        for seed in (2, 3):
            response = _submit(service, _request(simple_or_tree, seed=seed))
            assert response.status == 202
        rejected = _submit(service, _request(simple_or_tree, seed=4))
        assert rejected.status == 429
        assert ("Retry-After", "2.5") in list(rejected.headers)
        body = json.loads(rejected.body)
        assert "retry_after" in body and body["retry_after"] == 2.5
    finally:
        release.set()
        service.close()


def test_events_stream_ndjson(service, simple_or_tree):
    request = _request(simple_or_tree, record_events=False)
    submitted = json.loads(_submit(service, request).body)
    _wait_done(service, submitted["job_id"])
    response = service.handle("GET", submitted["events"], {}, b"")
    assert response.status == 200
    assert response.content_type == "application/x-ndjson"
    lines = [json.loads(line) for line in response.body.splitlines()]
    assert lines[-1]["record"] == "job"
    assert lines[-1]["status"] == "done"
    assert lines[-1]["events"] == len(lines) - 1
    # Progress records carry the schema-v1 marker.
    assert all(
        line["record"] == "progress" and line["schema_version"] == 1
        for line in lines[:-1]
    )


def test_failed_job_reports_error(service):
    # A payload that decodes but cannot simulate: horizon <= 0 passes
    # construction? No — StudyRequest validates eagerly, so instead
    # break at simulation time with an unknown kernel.
    envelope = {
        "schema_version": 1,
        "kind": "study_request",
        "payload": {"tree": {"name": "x"}},  # malformed tree
    }
    response = _submit(service, None, raw=json.dumps(envelope).encode())
    assert response.status == 400


def test_http_error_paths(service):
    assert service.handle("GET", "/nope", {}, b"").status == 404
    assert service.handle("GET", "/v1/studies/zzz", {}, b"").status == 404
    assert service.handle("GET", "/v1/studies/zzz/events", {}, b"").status == 404
    assert service.handle("GET", "/v1/studies", {}, b"").status == 405
    assert service.handle("POST", "/healthz", {}, b"").status == 405
    bad = service.handle("POST", "/v1/studies", {}, b"{not json")
    assert bad.status == 400
    versioned = service.handle(
        "POST",
        "/v1/studies",
        {},
        json.dumps(
            {"schema_version": 99, "kind": "study_request", "payload": {}}
        ).encode(),
    )
    assert versioned.status == 400
    assert "schema_version" in json.loads(versioned.body)


def test_healthz_and_metrics(service, simple_or_tree):
    health = service.handle("GET", "/healthz", {}, b"")
    assert health.status == 200
    payload = json.loads(health.body)
    assert payload["status"] == "ok"
    assert payload["jobs"]["workers"] == 1

    submitted = json.loads(_submit(service, _request(simple_or_tree)).body)
    _wait_done(service, submitted["job_id"])
    _submit(service, _request(simple_or_tree))  # cache hit
    metrics = service.handle("GET", "/metrics", {}, b"")
    text = metrics.body.decode("utf-8")
    assert "repro_service_cache_hits_total 1.0" in text
    assert "repro_study_fresh_trajectories_total" in text


# ----------------------------------------------------------------------
# Over real HTTP
# ----------------------------------------------------------------------


def _http(method, url, body=None):
    request = urllib.request.Request(url, data=body, method=method)
    if body is not None:
        request.add_header("Content-Type", "application/json")
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, dict(response.headers), response.read()
    except urllib.error.HTTPError as error:
        return error.code, dict(error.headers), error.read()


def test_over_real_http(simple_and_tree):
    request = _request(simple_and_tree, n_runs=30)
    server = serve_app(port=0, workers=1).start()
    try:
        base = server.url
        payload = dumps(request).encode("utf-8")

        status, _, body = _http("POST", f"{base}/v1/studies", payload)
        assert status == 202
        submitted = json.loads(body)

        deadline = time.time() + 30.0
        while time.time() < deadline:
            status, _, body = _http("GET", base + submitted["location"])
            document = json.loads(body)
            if document["status"] in ("done", "failed"):
                break
            time.sleep(0.05)
        assert document["status"] == "done"

        status, headers, body = _http("POST", f"{base}/v1/studies", payload)
        assert status == 200
        cached = json.loads(body)
        assert cached["cached"] is True
        assert cached["result"] == document["result"]
        # The wire result decodes to a usable summary.
        summary = decode_wire(cached["result"], expect="kpi_summary")
        assert 0.0 <= summary.unreliability.estimate <= 1.0

        status, _, body = _http("GET", base + submitted["events"])
        assert status == 200
        assert json.loads(body.splitlines()[-1])["record"] == "job"

        status, _, body = _http("GET", f"{base}/healthz")
        assert status == 200 and json.loads(body)["status"] == "ok"
        status, _, body = _http("GET", f"{base}/metrics")
        assert status == 200 and b"repro_service_requests_total" in body
    finally:
        server.stop()


def test_server_stop_is_idempotent_and_closes_service(simple_or_tree):
    server = serve_app(port=0, workers=1).start()
    server.stop()
    server.stop()  # second stop is a no-op


# ----------------------------------------------------------------------
# JobQueue unit behavior
# ----------------------------------------------------------------------


def test_job_queue_validates_parameters():
    runner = StudyRunner()
    try:
        with pytest.raises(ValueError):
            JobQueue(runner, max_pending=0)
        with pytest.raises(ValueError):
            JobQueue(runner, workers=0)
    finally:
        runner.close()


def test_job_queue_retention_evicts_only_finished(simple_or_tree):
    runner = StudyRunner()
    queue = JobQueue(runner, max_pending=64, workers=1, max_finished=2)
    try:
        jobs = []
        for seed in range(5):
            job, created = queue.submit(
                _request(simple_or_tree, n_runs=5, seed=seed)
            )
            assert created
            jobs.append(job)
            assert job.wait(30.0)
        # Only the newest max_finished jobs remain queryable.
        retained = [job for job in jobs if queue.get(job.id) is not None]
        assert len(retained) == 2
        assert retained[-1] is jobs[-1]
    finally:
        queue.close()
        runner.close()


def test_queue_full_exception_carries_fields():
    error = QueueFull(7, 1.5)
    assert error.pending == 7
    assert error.retry_after == 1.5
    assert "7 pending" in str(error)


# ----------------------------------------------------------------------
# Service-side kernel routing (ISSUE 10)
# ----------------------------------------------------------------------


def _raw_submission(request, drop=("kernel",)):
    """Wire envelope bytes with fields removed from the payload."""
    envelope = encode_wire(request)
    for field in drop:
        envelope["payload"].pop(field, None)
    return json.dumps(envelope).encode("utf-8")


def test_omitted_kernel_upgrades_to_vectorized(service, simple_or_tree):
    from dataclasses import replace

    request = _request(simple_or_tree, n_runs=30, seed=71)
    response = _submit(service, request, raw=_raw_submission(request))
    assert response.status == 202
    submitted = json.loads(response.body)
    assert submitted["kernel"] == "vectorized"
    assert submitted["kernel_fallback_reason"] is None
    # The rewrite happens before the key is computed: the upgraded
    # request lives in the vectorized cache namespace, never aliasing
    # the object engine's artifacts.
    upgraded = replace(request, kernel="vectorized")
    assert submitted["study_key"] == upgraded.key().digest
    assert submitted["study_key"] != request.key().digest

    _wait_done(service, submitted["job_id"])
    status = json.loads(
        service.handle("GET", submitted["location"], {}, b"").body
    )
    assert status["status"] == "done"
    assert status["kernel"] == "vectorized"
    assert status["kernel_fallback_reason"] is None
    counters = service.instrumentation.registry.to_dict()["counters"]
    assert counters["service.kernel_upgrades"] >= 1


def test_explicit_kernel_choice_wins(service, simple_or_tree):
    # A payload that names the object kernel keeps it, even though the
    # model is vectorizable.
    request = _request(simple_or_tree, n_runs=30, seed=72)
    response = _submit(service, request)
    assert response.status == 202
    submitted = json.loads(response.body)
    assert submitted["kernel"] == "object"
    assert submitted["kernel_fallback_reason"] is None
    assert submitted["study_key"] == request.key().digest


def _degraded_tree():
    from repro.core.builder import FMTBuilder

    builder = FMTBuilder("routed")
    builder.degraded_event("a", phases=3, mean=6.0, threshold=2)
    builder.degraded_event("b", phases=2, mean=9.0, threshold=1)
    builder.or_gate("top", ["a", "b"])
    return builder.build("top")


def test_non_vectorizable_model_surfaces_fallback_reason(service):
    from repro.maintenance.modules import InspectionModule
    from repro.maintenance.actions import clean

    strategy = MaintenanceStrategy(
        "s",
        inspections=(
            InspectionModule(
                "i",
                period=1.0,
                targets=["a"],
                action=clean(),
                timing="exponential",
            ),
        ),
    )
    request = StudyRequest(
        tree=_degraded_tree(),
        strategy=strategy,
        horizon=4.0,
        seed=73,
        n_runs=20,
    )
    response = _submit(service, request, raw=_raw_submission(request))
    assert response.status == 202
    submitted = json.loads(response.body)
    # The model cannot ride the lockstep kernel, so the request stays
    # on the object engine and the reason is surfaced.
    assert submitted["kernel"] == "object"
    assert "exponential" in submitted["kernel_fallback_reason"]
    assert submitted["study_key"] == request.key().digest

    _wait_done(service, submitted["job_id"])
    status = json.loads(
        service.handle("GET", submitted["location"], {}, b"").body
    )
    assert status["status"] == "done"
    assert status["kernel"] == "object"
    assert "exponential" in status["kernel_fallback_reason"]


def test_explicit_vectorized_on_fallback_model_keeps_reason(service):
    from repro.maintenance.modules import InspectionModule
    from repro.maintenance.actions import clean

    strategy = MaintenanceStrategy(
        "s",
        inspections=(
            InspectionModule(
                "i",
                period=1.0,
                targets=["a"],
                action=clean(),
                delay=0.25,
            ),
        ),
    )
    request = StudyRequest(
        tree=_degraded_tree(),
        strategy=strategy,
        horizon=4.0,
        seed=74,
        n_runs=20,
        kernel="vectorized",
    )
    response = _submit(service, request)
    assert response.status == 202
    submitted = json.loads(response.body)
    # Explicit choice is honoured (the driver falls back internally,
    # bit-identical to the object engine) and the reason is surfaced.
    assert submitted["kernel"] == "vectorized"
    assert "delayed" in submitted["kernel_fallback_reason"]


def test_upgraded_submission_matches_in_process_vectorized(simple_or_tree):
    from dataclasses import replace

    service = StudyService(max_pending=8, workers=1)
    try:
        request = _request(simple_or_tree, n_runs=40, seed=75)
        response = _submit(service, request, raw=_raw_submission(request))
        submitted = json.loads(response.body)
        job = _wait_done(service, submitted["job_id"])
        runner = StudyRunner()
        try:
            expected = runner.summary(replace(request, kernel="vectorized"))
        finally:
            runner.close()
        assert encode_wire(job.result) == encode_wire(expected)
    finally:
        service.close()
