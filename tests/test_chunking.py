"""The ``chunk_trajectories`` knob: config, determinism, progress, keys.

The chunk size controls how many trajectories the lockstep kernel
simulates per RNG stream, so it is part of a study's statistical
identity whenever it deviates from the default — and invisible (same
digests, same cached bytes) when left alone.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.batch import COST_FIELDS, TrajectoryBatch
from repro.simulation.executor import (
    DEFAULT_CHUNK_TRAJECTORIES,
    FMTSimulator,
    SimulationConfig,
)
from repro.simulation.montecarlo import MonteCarlo
from repro.simulation.vectorized import VectorizedKernel
from repro.studies import key as key_mod
from repro.studies.runner import StudyRequest
from repro.core.builder import FMTBuilder


def _tree():
    builder = FMTBuilder("chunked")
    builder.degraded_event("a", phases=3, mean=6.0, threshold=2)
    builder.degraded_event("b", phases=2, mean=9.0, threshold=1)
    builder.or_gate("top", ["a", "b"])
    return builder.build("top")


def _mc(seed=7, chunk=None, horizon=10.0):
    kwargs = {}
    if chunk is not None:
        kwargs["chunk_trajectories"] = chunk
    return MonteCarlo(
        _tree(),
        MaintenanceStrategy.none(),
        horizon=horizon,
        seed=seed,
        kernel="vectorized",
        **kwargs,
    )


def _assert_batches_equal(a: TrajectoryBatch, b: TrajectoryBatch) -> None:
    assert np.array_equal(a.failure_times, b.failure_times)
    assert np.array_equal(a.failure_offsets, b.failure_offsets)
    assert np.array_equal(a.downtime, b.downtime)
    for field in COST_FIELDS:
        assert np.array_equal(a.costs[field], b.costs[field]), field
    assert np.array_equal(a.n_inspections, b.n_inspections)
    assert np.array_equal(a.n_preventive_actions, b.n_preventive_actions)
    assert np.array_equal(
        a.n_corrective_replacements, b.n_corrective_replacements
    )


# ----------------------------------------------------------------------
# Configuration plumbing
# ----------------------------------------------------------------------
def test_chunk_trajectories_validation():
    with pytest.raises(ValidationError):
        SimulationConfig(horizon=10.0, chunk_trajectories=0)
    with pytest.raises(ValidationError):
        SimulationConfig(horizon=10.0, chunk_trajectories=-4)
    assert SimulationConfig(horizon=10.0).chunk_trajectories == (
        DEFAULT_CHUNK_TRAJECTORIES
    )


def test_montecarlo_chunk_argument():
    mc = _mc(chunk=16)
    assert mc.simulator.config.chunk_trajectories == 16
    assert _mc().simulator.config.chunk_trajectories == (
        DEFAULT_CHUNK_TRAJECTORIES
    )


def test_study_request_validates_chunk():
    with pytest.raises(ValidationError):
        StudyRequest(
            tree=_tree(),
            strategy=MaintenanceStrategy.none(),
            horizon=10.0,
            seed=1,
            n_runs=10,
            chunk_trajectories=0,
        )


# ----------------------------------------------------------------------
# Chunk-boundary determinism
# ----------------------------------------------------------------------
def test_chunk_boundary_determinism():
    # run(40) at chunk 16 must equal hand-driving the kernel over the
    # same stream plan: full, full, partial — one spawned child each.
    mc = _mc(seed=7, chunk=16)
    result = mc.run(40)

    kernel = VectorizedKernel(_mc(seed=7, chunk=16).simulator)
    seeds = np.random.SeedSequence(7).spawn(3)
    manual = TrajectoryBatch.merge(
        [
            kernel.simulate_chunk(16, np.random.default_rng(seeds[0])),
            kernel.simulate_chunk(16, np.random.default_rng(seeds[1])),
            kernel.simulate_chunk(8, np.random.default_rng(seeds[2])),
        ]
    )
    _assert_batches_equal(result.batch, manual)
    assert mc._streams_used == 3


def test_rerun_bit_identical():
    _assert_batches_equal(
        _mc(seed=5, chunk=16).run(50).batch,
        _mc(seed=5, chunk=16).run(50).batch,
    )


# ----------------------------------------------------------------------
# Progress: watched runs are bit-identical to silent ones
# ----------------------------------------------------------------------
class _Collector:
    def __init__(self):
        self.events = []

    def update(self, event):
        self.events.append(event)

    def close(self):
        pass


def test_watched_run_bit_identical_to_silent():
    silent = _mc(seed=9, chunk=64).run(200)
    reporter = _Collector()
    watched = _mc(seed=9, chunk=64).run(200, progress=reporter)
    _assert_batches_equal(silent.batch, watched.batch)
    assert silent.summary == watched.summary
    assert reporter.events, "watched run emitted no progress"
    completed = [event.completed for event in reporter.events]
    assert completed == sorted(completed)
    assert completed[-1] == 200
    assert reporter.events[-1].done
    # In-chunk events fire between chunk boundaries (multiples of 64),
    # at the object path's throttle cadence.
    boundaries = {64, 128, 200}
    assert any(c not in boundaries for c in completed), (
        "expected in-chunk progress events, got only boundary events"
    )


# ----------------------------------------------------------------------
# Study-key fracturing
# ----------------------------------------------------------------------
def _material(**overrides):
    kwargs = dict(
        tree="tree-material",
        strategy=None,
        horizon=10.0,
        cost_model="costs",
        seed=3,
        n_runs=100,
        confidence=0.95,
        record_events=False,
    )
    kwargs.update(overrides)
    return key_mod.study_material(**kwargs)


def test_default_chunk_matches_executor_default():
    assert key_mod._DEFAULT_CHUNK_TRAJECTORIES == DEFAULT_CHUNK_TRAJECTORIES


def test_default_chunk_leaves_material_untouched():
    # Passing the default explicitly must not fracture existing caches.
    assert _material() == _material(
        chunk_trajectories=DEFAULT_CHUNK_TRAJECTORIES
    )
    assert "chunk_trajectories" not in _material()


def test_non_default_chunk_fractures_material():
    fractured = _material(chunk_trajectories=512)
    assert fractured != _material()
    assert "chunk_trajectories" in fractured
    assert _material(chunk_trajectories=512) == fractured


def test_study_request_key_fractures_on_chunk():
    base = dict(
        tree=_tree(),
        strategy=MaintenanceStrategy.none(),
        horizon=10.0,
        seed=1,
        n_runs=10,
        kernel="vectorized",
    )
    default_key = StudyRequest(**base).key()
    explicit_default = StudyRequest(
        chunk_trajectories=DEFAULT_CHUNK_TRAJECTORIES, **base
    ).key()
    tuned = StudyRequest(chunk_trajectories=512, **base).key()
    assert default_key.digest == explicit_default.digest
    assert tuned.digest != default_key.digest


def test_study_request_chunk_roundtrips_wire():
    request = StudyRequest(
        tree=_tree(),
        strategy=MaintenanceStrategy.none(),
        horizon=10.0,
        seed=1,
        n_runs=10,
        chunk_trajectories=512,
    )
    assert StudyRequest.from_dict(request.to_dict()).chunk_trajectories == 512
    legacy = request.to_dict()
    del legacy["chunk_trajectories"]
    assert StudyRequest.from_dict(legacy).chunk_trajectories == (
        DEFAULT_CHUNK_TRAJECTORIES
    )


# ----------------------------------------------------------------------
# CLI plumbing
# ----------------------------------------------------------------------
def test_cli_chunk_size(tmp_path, capsys):
    from repro.cli import main
    from repro.dsl import save_file

    model = tmp_path / "model.fmt"
    save_file(_tree(), model)
    code = main(
        [
            "simulate",
            str(model),
            "--runs",
            "64",
            "--kernel",
            "vectorized",
            "--chunk-size",
            "32",
        ]
    )
    assert code == 0
    assert "unreliability" in capsys.readouterr().out
