"""Shared-memory parallel fold: bit-identity, overflow, leak safety."""

import glob

import numpy as np
import pytest

from repro.errors import SimulationError, ValidationError
from repro.simulation.batch import COST_FIELDS, TrajectoryBatch
from repro.simulation.executor import FMTSimulator, SimulationConfig
from repro.simulation.parallel import (
    SharedSimulationPool,
    sample_parallel_batch,
)
from repro.simulation.shm import (
    FAILURE_SLOTS_PER_ROW,
    ShmBatchWriter,
    shared_memory_available,
    write_chunk_batch,
)


def _assert_batches_equal(a: TrajectoryBatch, b: TrajectoryBatch) -> None:
    assert a.horizon == b.horizon
    assert np.array_equal(a.failure_times, b.failure_times)
    assert np.array_equal(a.failure_offsets, b.failure_offsets)
    assert np.array_equal(a.downtime, b.downtime)
    for field in COST_FIELDS:
        assert np.array_equal(a.costs[field], b.costs[field]), field
    assert np.array_equal(a.n_inspections, b.n_inspections)
    assert np.array_equal(a.n_preventive_actions, b.n_preventive_actions)
    assert np.array_equal(
        a.n_corrective_replacements, b.n_corrective_replacements
    )


def _segments() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


def _make_batch(n: int, failures_per_row: int = 1) -> TrajectoryBatch:
    rng = np.random.default_rng(0)
    counts = np.full(n, failures_per_row, dtype=np.int64)
    offsets = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(counts, out=offsets[1:])
    return TrajectoryBatch(
        horizon=10.0,
        failure_times=rng.uniform(0.0, 10.0, int(offsets[-1])),
        failure_offsets=offsets,
        downtime=rng.uniform(0.0, 1.0, n),
        costs={field: rng.uniform(0.0, 5.0, n) for field in COST_FIELDS},
        n_inspections=rng.integers(0, 40, n),
        n_preventive_actions=rng.integers(0, 5, n),
        n_corrective_replacements=rng.integers(0, 3, n),
    )


def test_shared_memory_available_here():
    assert shared_memory_available()


def test_writer_roundtrip_in_process():
    # Driver and "worker" in one process: scatter two chunks, gather,
    # and compare against a straight concatenation.
    chunk_a, chunk_b = _make_batch(5), _make_batch(3)
    with ShmBatchWriter(10.0, [5, 3]) as writer:
        handles = [
            write_chunk_batch(chunk_a, writer.spec(0)),
            write_chunk_batch(chunk_b, writer.spec(1)),
        ]
        merged = writer.finalize(handles)
    _assert_batches_equal(merged, TrajectoryBatch.merge([chunk_a, chunk_b]))


def test_writer_overflow_falls_back_to_pickled_times():
    # Zero reserved slots force every chunk through the overflow path;
    # the gathered batch must still be exact.
    chunk = _make_batch(4, failures_per_row=FAILURE_SLOTS_PER_ROW + 2)
    with ShmBatchWriter(10.0, [4], slots_per_row=0) as writer:
        handle = write_chunk_batch(chunk, writer.spec(0))
        assert handle.overflow_times is not None
        merged = writer.finalize([handle])
    _assert_batches_equal(merged, chunk)


def test_writer_close_idempotent_and_unlinks():
    before = _segments()
    writer = ShmBatchWriter(10.0, [2])
    assert len(_segments() - before) == 1
    writer.close()
    writer.close()
    assert _segments() == before
    with pytest.raises(SimulationError):
        writer.finalize([])


def test_writer_rejects_bad_plan():
    with pytest.raises(ValidationError):
        ShmBatchWriter(10.0, [])
    with pytest.raises(ValidationError):
        ShmBatchWriter(10.0, [4, 0])


def test_write_chunk_rejects_row_mismatch():
    with ShmBatchWriter(10.0, [3]) as writer:
        with pytest.raises(SimulationError):
            write_chunk_batch(_make_batch(2), writer.spec(0))


def test_shm_fold_bit_identical_to_pickled(maintained_tree, inspection_strategy):
    simulator = FMTSimulator(
        maintained_tree, inspection_strategy, horizon=20.0
    )
    seeds = np.random.SeedSequence(11).spawn(40)
    before = _segments()
    shm_batch = sample_parallel_batch(
        simulator, seeds, processes=2, chunk_size=9, use_shared_memory=True
    )
    pickled = sample_parallel_batch(
        simulator, seeds, processes=2, chunk_size=9, use_shared_memory=False
    )
    _assert_batches_equal(shm_batch, pickled)
    assert _segments() == before


def test_shm_fold_through_shared_pool(maintained_tree, inspection_strategy):
    simulator = FMTSimulator(
        maintained_tree, inspection_strategy, horizon=20.0
    )
    seeds = np.random.SeedSequence(12).spawn(30)
    before = _segments()
    with SharedSimulationPool(processes=2) as pool:
        shm_batch = sample_parallel_batch(
            simulator, seeds, processes=2, chunk_size=8, pool=pool,
            use_shared_memory=True,
        )
    pickled = sample_parallel_batch(
        simulator, seeds, processes=2, chunk_size=8, use_shared_memory=False
    )
    _assert_batches_equal(shm_batch, pickled)
    assert _segments() == before


def test_shm_fold_vectorized_kernel(maintained_tree, inspection_strategy):
    config = SimulationConfig(horizon=20.0, kernel="vectorized")
    simulator = FMTSimulator(
        maintained_tree, inspection_strategy, config=config
    )
    seeds = np.random.SeedSequence(13).spawn(24)
    shm_batch = sample_parallel_batch(
        simulator, seeds, processes=2, chunk_size=6, use_shared_memory=True
    )
    pickled = sample_parallel_batch(
        simulator, seeds, processes=2, chunk_size=6, use_shared_memory=False
    )
    _assert_batches_equal(shm_batch, pickled)


def test_shm_segment_unlinked_when_worker_raises(maintained_tree):
    # Garbage seeds make every worker chunk raise before simulating;
    # the exception propagates to the driver, which must still unlink
    # the segment in its ``finally``.
    simulator = FMTSimulator(maintained_tree, None, horizon=20.0)
    bad_seeds = ["not-a-seed"] * 8
    before = _segments()
    with pytest.raises(Exception):
        sample_parallel_batch(
            simulator, bad_seeds, processes=2, chunk_size=2,
            use_shared_memory=True,
        )
    assert _segments() == before
