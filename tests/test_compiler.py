"""FMT-to-CTMC compiler: exactness against closed forms and the simulator."""

import math

import pytest

from repro.core.builder import FMTBuilder
from repro.ctmc.compiler import compile_fmt
from repro.errors import AnalysisError, UnsupportedModelError
from repro.maintenance.actions import clean
from repro.maintenance.modules import InspectionModule, RepairModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.montecarlo import MonteCarlo


def _single(phases=1, mean=2.0, threshold=None):
    builder = FMTBuilder("single")
    builder.degraded_event("w", phases=phases, mean=mean, threshold=threshold)
    builder.or_gate("top", ["w"])
    return builder.build("top")


def test_single_exponential_unreliability():
    tree = _single(phases=1, mean=2.0)
    compiled = compile_fmt(tree, MaintenanceStrategy.absorbing())
    for t in (0.5, 2.0, 5.0):
        assert compiled.unreliability(t) == pytest.approx(
            1.0 - math.exp(-t / 2.0), abs=1e-9
        )


def test_erlang_unreliability_matches_event_cdf():
    tree = _single(phases=4, mean=8.0)
    event = tree.basic_events["w"]
    compiled = compile_fmt(tree, MaintenanceStrategy.absorbing())
    for t in (1.0, 5.0, 20.0):
        assert compiled.unreliability(t) == pytest.approx(
            event.lifetime_cdf(t), abs=1e-8
        )


def test_and_gate_unreliability():
    builder = FMTBuilder("and")
    builder.basic_event("a", rate=0.5)
    builder.basic_event("b", rate=0.25)
    builder.and_gate("top", ["a", "b"])
    tree = builder.build("top")
    compiled = compile_fmt(tree, MaintenanceStrategy.absorbing())
    t = 3.0
    expected = (1 - math.exp(-0.5 * t)) * (1 - math.exp(-0.25 * t))
    assert compiled.unreliability(t) == pytest.approx(expected, abs=1e-9)


def test_rdep_acceleration_exact():
    """Trigger fails at rate a; target rate jumps from r to g*r."""
    builder = FMTBuilder("rdep")
    builder.basic_event("target_evt", rate=0.1)
    builder.basic_event("trig", rate=1.0)
    builder.and_gate("guard", ["trig", "target_evt"])
    builder.or_gate("top", ["target_evt", "guard"])
    builder.rdep("d", trigger="trig", targets=["target_evt"], factor=5.0)
    tree = builder.build("top")
    compiled = compile_fmt(tree, MaintenanceStrategy.absorbing())
    # Compare against a 1000-run simulation at a few time points.
    sim = MonteCarlo(
        tree, MaintenanceStrategy.absorbing(), horizon=5.0, seed=42
    ).run(4000)
    exact = compiled.unreliability(5.0)
    assert sim.unreliability.contains(exact)


def test_exponential_inspection_reduces_unreliability():
    tree = _single(phases=3, mean=3.0, threshold=2)
    module = InspectionModule(
        "i", period=0.25, targets=["w"], action=clean(), timing="exponential"
    )
    inspected = MaintenanceStrategy(
        "s", inspections=(module,), on_system_failure="none"
    )
    with_inspection = compile_fmt(tree, inspected)
    without = compile_fmt(tree, MaintenanceStrategy.absorbing())
    assert with_inspection.unreliability(5.0) < without.unreliability(5.0) / 2


def test_expected_failures_instant_repair_exponential():
    """Poisson process: instant renewal of an exponential component."""
    tree = _single(phases=1, mean=2.0)
    strategy = MaintenanceStrategy(
        "s", on_system_failure="replace", system_repair_time=0.0
    )
    compiled = compile_fmt(tree, strategy, mode="availability")
    assert compiled.expected_failures(10.0) == pytest.approx(5.0, rel=1e-4)


def test_expected_failures_erlang_renewal():
    """Renewal process with Erlang-2 interarrivals: exact renewal function."""
    tree = _single(phases=2, mean=2.0)  # per-phase rate 1.0
    strategy = MaintenanceStrategy(
        "s", on_system_failure="replace", system_repair_time=0.0
    )
    compiled = compile_fmt(tree, strategy, mode="availability")
    # m(t) = t/2 - 1/4 + e^{-2t}/4 for Erlang(2, 1) renewals.
    t = 10.0
    expected = t / 2.0 - 0.25 + math.exp(-2.0 * t) / 4.0
    assert compiled.expected_failures(t) == pytest.approx(expected, rel=1e-3)


def test_unavailability_with_repair_time():
    tree = _single(phases=1, mean=1.0)
    strategy = MaintenanceStrategy(
        "s", on_system_failure="replace", system_repair_time=0.5
    )
    compiled = compile_fmt(tree, strategy, mode="availability")
    # Long-run unavailability = 0.5 / 1.5; at a long horizon it converges.
    assert compiled.unavailability(300.0, n_steps=600) == pytest.approx(
        1.0 / 3.0, rel=0.02
    )


def test_unavailability_zero_with_instant_repair():
    tree = _single(phases=1, mean=1.0)
    strategy = MaintenanceStrategy(
        "s", on_system_failure="replace", system_repair_time=0.0
    )
    compiled = compile_fmt(tree, strategy, mode="availability")
    assert compiled.unavailability(10.0) == 0.0


def test_periodic_timing_rejected():
    tree = _single(phases=3, mean=3.0, threshold=2)
    module = InspectionModule("i", period=0.25, targets=["w"], action=clean())
    strategy = MaintenanceStrategy("s", inspections=(module,))
    with pytest.raises(UnsupportedModelError):
        compile_fmt(tree, strategy)


def test_inspection_delay_rejected():
    tree = _single(phases=3, mean=3.0, threshold=2)
    module = InspectionModule(
        "i",
        period=0.25,
        targets=["w"],
        action=clean(),
        delay=0.1,
        timing="exponential",
    )
    strategy = MaintenanceStrategy("s", inspections=(module,))
    with pytest.raises(UnsupportedModelError):
        compile_fmt(tree, strategy)


def test_pand_rejected():
    builder = FMTBuilder("pand")
    builder.basic_event("a", rate=1.0)
    builder.basic_event("b", rate=1.0)
    builder.pand_gate("top", ["a", "b"])
    tree = builder.build("top")
    with pytest.raises(UnsupportedModelError):
        compile_fmt(tree)


def test_availability_needs_replace_response():
    tree = _single()
    with pytest.raises(UnsupportedModelError):
        compile_fmt(tree, MaintenanceStrategy.absorbing(), mode="availability")


def test_unknown_mode_rejected():
    with pytest.raises(AnalysisError):
        compile_fmt(_single(), mode="banana")


def test_state_space_guard():
    builder = FMTBuilder("big")
    names = [f"x{i}" for i in range(12)]
    for name in names:
        builder.degraded_event(name, phases=4, mean=10.0)
    builder.and_gate("top", names)
    tree = builder.build("top")
    with pytest.raises(UnsupportedModelError):
        compile_fmt(tree, max_states=1000)


def test_wrong_mode_queries_rejected():
    tree = _single()
    unrel = compile_fmt(tree, MaintenanceStrategy.absorbing())
    with pytest.raises(AnalysisError):
        unrel.expected_failures(1.0)
    avail = compile_fmt(
        tree,
        MaintenanceStrategy("s", on_system_failure="replace"),
        mode="availability",
    )
    with pytest.raises(AnalysisError):
        avail.unreliability(1.0)


def test_repair_module_exponential_included():
    tree = _single(phases=4, mean=4.0)
    module = RepairModule(
        "renew", period=1.0, targets=["w"], timing="exponential"
    )
    strategy = MaintenanceStrategy(
        "s", repairs=(module,), on_system_failure="none"
    )
    renewed = compile_fmt(tree, strategy)
    bare = compile_fmt(tree, MaintenanceStrategy.absorbing())
    assert renewed.unreliability(8.0) < bare.unreliability(8.0)
