"""Phase-type (Erlang) approximation of general distributions."""

import pytest

from repro.core.events import BasicEvent
from repro.errors import EstimationError, ValidationError
from repro.stats.distributions import (
    Deterministic,
    Erlang,
    Exponential,
    LogNormal,
    Weibull,
)
from repro.stats.phasefit import (
    erlang_approximation,
    kolmogorov_distance,
)


def test_exponential_maps_to_one_phase():
    fit = erlang_approximation(Exponential(rate=0.5))
    assert fit.phases == 1
    assert fit.erlang.rate == pytest.approx(0.5)
    assert fit.kolmogorov == pytest.approx(0.0, abs=1e-9)


def test_erlang_is_reproduced_exactly():
    target = Erlang(shape=4, rate=0.5)
    fit = erlang_approximation(target)
    assert fit.phases == 4
    assert fit.erlang.rate == pytest.approx(0.5)
    assert fit.kolmogorov == pytest.approx(0.0, abs=1e-9)


def test_weibull_shape2_gets_multiple_phases():
    # Weibull k=2 has CV ~ 0.52 -> ~4 phases.
    target = Weibull(scale=10.0, shape=2.0)
    fit = erlang_approximation(target)
    assert 3 <= fit.phases <= 5
    assert fit.erlang.mean() == pytest.approx(target.mean(), rel=1e-6)
    assert fit.kolmogorov < 0.05


def test_lognormal_fit_quality_reported():
    target = LogNormal(mu=2.0, sigma=0.4)
    fit = erlang_approximation(target)
    assert fit.phases > 1
    assert 0.0 < fit.kolmogorov < 0.2


def test_deterministic_hits_phase_cap():
    fit = erlang_approximation(Deterministic(value=5.0), max_phases=30)
    assert fit.phases == 30
    assert fit.erlang.mean() == pytest.approx(5.0)


def test_high_cv_falls_back_to_exponential():
    # Weibull shape 0.7 has CV > 1: best Erlang is the exponential.
    fit = erlang_approximation(Weibull(scale=5.0, shape=0.7))
    assert fit.phases == 1


def test_explicit_moments_override():
    fit = erlang_approximation(Exponential(rate=1.0), mean=10.0, cv=0.5)
    assert fit.phases == 4
    assert fit.erlang.mean() == pytest.approx(10.0)


def test_invalid_moments_rejected():
    with pytest.raises(EstimationError):
        erlang_approximation(Exponential(rate=1.0), mean=-1.0)
    with pytest.raises(EstimationError):
        erlang_approximation(Exponential(rate=1.0), cv=0.0)


def test_kolmogorov_distance_symmetry():
    a = Exponential(rate=0.5)
    b = Erlang(shape=3, rate=1.5)
    assert kolmogorov_distance(a, b) == pytest.approx(
        kolmogorov_distance(b, a)
    )


def test_kolmogorov_identity_is_zero():
    a = Weibull(scale=3.0, shape=2.0)
    assert kolmogorov_distance(a, a) == 0.0


def test_basic_event_from_distribution():
    event = BasicEvent.from_distribution(
        "wear", Weibull(scale=10.0, shape=2.0), threshold_fraction=0.5
    )
    assert event.phases >= 3
    assert event.threshold == max(1, round(0.5 * event.phases))
    assert event.mean_lifetime() == pytest.approx(
        Weibull(scale=10.0, shape=2.0).mean(), rel=1e-6
    )


def test_basic_event_from_distribution_no_threshold():
    event = BasicEvent.from_distribution("wear", Exponential(rate=0.1))
    assert event.threshold is None


def test_basic_event_from_distribution_bad_fraction():
    with pytest.raises(ValidationError):
        BasicEvent.from_distribution(
            "wear", Exponential(rate=0.1), threshold_fraction=1.5
        )


def test_fitted_event_usable_in_simulation():
    from repro.core.builder import FMTBuilder
    from repro.maintenance.strategy import MaintenanceStrategy
    from repro.simulation.montecarlo import MonteCarlo

    builder = FMTBuilder("fitted")
    builder.add_event(
        BasicEvent.from_distribution(
            "wear", Weibull(scale=8.0, shape=2.5), threshold_fraction=0.5
        )
    )
    builder.or_gate("top", ["wear"])
    tree = builder.build("top")
    result = MonteCarlo(
        tree, MaintenanceStrategy.absorbing(), horizon=100.0, seed=2
    ).run(500, keep_trajectories=True)
    import numpy as np

    mean_ttf = np.mean(
        [t.first_failure for t in result.trajectories if t.first_failure]
    )
    assert mean_ttf == pytest.approx(
        Weibull(scale=8.0, shape=2.5).mean(), rel=0.1
    )
