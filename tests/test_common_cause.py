"""Beta-factor common-cause failure transform."""

import math

import pytest

from repro.analysis.common_cause import apply_beta_factor
from repro.analysis.unreliability import unreliability
from repro.core.builder import FMTBuilder
from repro.errors import UnsupportedModelError, ValidationError
from repro.maintenance.modules import InspectionModule
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.montecarlo import MonteCarlo


def _redundant_tree(rate=0.1, k=2, n=3):
    builder = FMTBuilder("redundant")
    names = [f"c{i}" for i in range(n)]
    for name in names:
        builder.basic_event(name, rate=rate)
    builder.voting_gate("top", k, names)
    return builder.build("top"), names


def test_transform_structure():
    tree, names = _redundant_tree()
    transformed = apply_beta_factor(tree, names, beta=0.2)
    assert "ccf" in transformed.basic_events
    for name in names:
        assert name in transformed.gates  # member is now an OR gate
        assert f"{name}_indep" in transformed.basic_events


def test_rates_split():
    tree, names = _redundant_tree(rate=0.1)
    transformed = apply_beta_factor(tree, names, beta=0.25)
    assert transformed.basic_events["ccf"].phase_rates[0] == pytest.approx(
        0.025
    )
    assert transformed.basic_events["c0_indep"].phase_rates[0] == (
        pytest.approx(0.075)
    )


def test_marginal_failure_probability_preserved():
    """Each member's marginal lifetime is unchanged by the split:
    independent and common parts race at rates summing to the original."""
    tree, names = _redundant_tree(rate=0.2)
    transformed = apply_beta_factor(tree, names, beta=0.3)
    t = 3.0
    marginal = 1.0 - math.exp(-0.2 * t)
    # P(c0 fails by t) = P(indep or ccf) with independent exponentials.
    p_indep = transformed.basic_events["c0_indep"].lifetime_cdf(t)
    p_ccf = transformed.basic_events["ccf"].lifetime_cdf(t)
    combined = 1.0 - (1.0 - p_indep) * (1.0 - p_ccf)
    assert combined == pytest.approx(marginal, rel=1e-9)


def test_ccf_defeats_redundancy_on_short_missions():
    """Small member failure probability: k-of-n goes from O(p^k) to
    O(beta*p) — the classical CCF danger."""
    tree, names = _redundant_tree(rate=0.1, k=2, n=3)
    t = 0.2  # p ~ 0.02
    independent = unreliability(tree, t)
    previous = independent
    for beta in (0.1, 0.3, 0.6):
        transformed = apply_beta_factor(tree, names, beta=beta)
        dependent = unreliability(transformed, t)
        assert dependent > previous
        previous = dependent
    # The jump is an order of magnitude, not a perturbation.
    assert previous > 10.0 * independent


def test_ccf_can_help_on_long_missions():
    """Near-certain member failure: correlation concentrates mass on
    'all or none', which *reduces* P(at least k fail) — the marginal-
    preserving transform is not uniformly pessimistic."""
    tree, names = _redundant_tree(rate=0.1, k=2, n=3)
    t = 5.0  # p ~ 0.39
    independent = unreliability(tree, t)
    transformed = apply_beta_factor(tree, names, beta=0.3)
    assert unreliability(transformed, t) < independent


def test_single_component_unaffected_in_distribution():
    """For a 1-of-n (series) system CCF does not change unreliability:
    the first failure time distribution is identical."""
    tree, names = _redundant_tree(rate=0.1, k=1, n=3)
    base = unreliability(tree, 4.0)
    transformed = apply_beta_factor(tree, names, beta=0.4)
    # Series system: fails at min of member lifetimes. Marginals are
    # preserved but members are now positively correlated, so the min
    # is stochastically *larger*: unreliability can only drop.
    assert unreliability(transformed, 4.0) <= base + 1e-12


def test_simulator_handles_transformed_tree():
    tree, names = _redundant_tree(rate=0.3, k=2, n=3)
    transformed = apply_beta_factor(tree, names, beta=0.5)
    sim = MonteCarlo(
        transformed, MaintenanceStrategy.absorbing(), horizon=10.0, seed=6
    ).run(3000, confidence=0.99)
    exact = unreliability(transformed, 10.0)
    assert sim.unreliability.contains(exact)


def test_validation_beta_range():
    tree, names = _redundant_tree()
    with pytest.raises(ValidationError):
        apply_beta_factor(tree, names, beta=0.0)
    with pytest.raises(ValidationError):
        apply_beta_factor(tree, names, beta=1.0)


def test_validation_group_size():
    tree, names = _redundant_tree()
    with pytest.raises(ValidationError):
        apply_beta_factor(tree, names[:1], beta=0.2)


def test_validation_unknown_member():
    tree, names = _redundant_tree()
    with pytest.raises(ValidationError):
        apply_beta_factor(tree, ["ghost", "c0"], beta=0.2)


def test_multi_phase_member_rejected():
    builder = FMTBuilder("t")
    builder.degraded_event("a", phases=2, mean=1.0)
    builder.degraded_event("b", phases=2, mean=1.0)
    builder.and_gate("top", ["a", "b"])
    tree = builder.build("top")
    with pytest.raises(UnsupportedModelError):
        apply_beta_factor(tree, ["a", "b"], beta=0.2)


def test_unequal_rates_rejected():
    builder = FMTBuilder("t")
    builder.basic_event("a", rate=0.1)
    builder.basic_event("b", rate=0.2)
    builder.and_gate("top", ["a", "b"])
    tree = builder.build("top")
    with pytest.raises(UnsupportedModelError):
        apply_beta_factor(tree, ["a", "b"], beta=0.2)


def test_maintenance_on_members_rejected():
    builder = FMTBuilder("t")
    builder.degraded_event("a", phases=1, mean=1.0, threshold=1)
    builder.degraded_event("b", phases=1, mean=1.0, threshold=1)
    builder.and_gate("top", ["a", "b"])
    builder.inspection("i", period=1.0, targets=["a"])
    tree = builder.build("top")
    with pytest.raises(UnsupportedModelError):
        apply_beta_factor(tree, ["a", "b"], beta=0.2)


def test_name_collision_rejected():
    tree, names = _redundant_tree()
    with pytest.raises(ValidationError):
        apply_beta_factor(tree, names, beta=0.2, ccf_name="c0")


def test_eijoint_bolt_ccf():
    """A bolt-batch common cause collapses the 2-of-4 redundancy."""
    from repro.eijoint import build_ei_joint_fmt

    tree = build_ei_joint_fmt().without_dependencies()
    # Bolts are 2-phase; model the CCF on a simplified single-phase
    # variant of the bolt group.
    import dataclasses

    from repro.eijoint.parameters import default_parameters

    params = default_parameters()
    for bolt in params.bolt_names:
        params = params.with_mode(bolt, phases=1, threshold=None)
    simplified = build_ei_joint_fmt(
        dataclasses.replace(params, bolt_glue_acceleration=1.0)
    )
    transformed = apply_beta_factor(
        simplified, list(params.bolt_names), beta=0.2, ccf_name="bolt_batch"
    )
    # Short mission: each bolt is unlikely to have failed, so the
    # common cause dominates the pair combinations.
    base = unreliability(simplified, 2.0)
    with_ccf = unreliability(transformed, 2.0)
    assert with_ccf > base
