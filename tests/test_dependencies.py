"""Rate dependency (RDEP) declarations."""

import pytest

from repro.core.dependencies import RateDependency
from repro.errors import ValidationError


def test_basic_construction():
    dep = RateDependency("d", "trigger", ["a", "b"], 2.5)
    assert dep.trigger == "trigger"
    assert dep.targets == ("a", "b")
    assert dep.factor == 2.5


def test_factor_one_allowed():
    assert RateDependency("d", "t", ["a"], 1.0).factor == 1.0


def test_factor_below_one_rejected():
    with pytest.raises(ValidationError):
        RateDependency("d", "t", ["a"], 0.5)


def test_factor_nan_rejected():
    with pytest.raises(ValidationError):
        RateDependency("d", "t", ["a"], float("nan"))


def test_empty_targets_rejected():
    with pytest.raises(ValidationError):
        RateDependency("d", "t", [], 2.0)


def test_duplicate_targets_rejected():
    with pytest.raises(ValidationError):
        RateDependency("d", "t", ["a", "a"], 2.0)


def test_trigger_cannot_target_itself():
    with pytest.raises(ValidationError):
        RateDependency("d", "a", ["a", "b"], 2.0)


def test_invalid_names_rejected():
    with pytest.raises(ValidationError):
        RateDependency("1bad", "t", ["a"], 2.0)
    with pytest.raises(ValidationError):
        RateDependency("d", "t", ["bad name"], 2.0)


def test_dict_round_trip():
    dep = RateDependency("d", "t", ["a", "b"], 3.0)
    clone = RateDependency.from_dict(dep.to_dict())
    assert clone.to_dict() == dep.to_dict()


def test_repr():
    text = repr(RateDependency("d", "t", ["a"], 2.0))
    assert "trigger='t'" in text and "factor=2" in text
