"""Experiment harness: every experiment runs and reproduces its claims.

These are the repository's acceptance tests: each experiment must not
only run but exhibit the qualitative *shape* the paper reports (see
EXPERIMENTS.md).  They run with a reduced configuration to stay fast;
benchmark runs use the full configuration.
"""

import re

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.registry import (
    experiment_ids,
    get_experiment,
    iter_experiments,
)
from repro.experiments import (
    ablation_detection,
    ablation_phases,
    ablation_rdep,
    ctmc_crossval,
    fig4_reliability,
    fig5_enf,
    fig6_cost,
    fig7_renewal,
    fig8_fleet,
    optimum,
    periodic_crossval,
    rareevent,
    sensitivity,
    table1_model,
    table2_strategies,
    table3_validation,
    table4_importance,
    uncertainty,
)

CFG = ExperimentConfig(n_runs=400, horizon=40.0, seed=7)


def _estimate(cell: str) -> float:
    """Parse the point estimate out of an 'x ±y' cell."""
    return float(cell.split()[0])


def test_registry_complete():
    assert set(experiment_ids()) == {
        "table1",
        "table2",
        "table3",
        "table4",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "optimum",
        "sensitivity",
        "uncertainty",
        "ablation-rdep",
        "ablation-phases",
        "ablation-detection",
        "ctmc-crossval",
        "periodic-crossval",
        "rareevent",
    }


@pytest.mark.parametrize("key", ["table1", "table2"])
def test_structural_tables_render(key):
    result = get_experiment(key)(None)
    text = result.to_text()
    assert result.rows
    assert result.experiment_id in text


def test_registry_paper_order():
    """iter_experiments() follows the paper's evaluation order."""
    ids = [key for key, _ in iter_experiments()]
    assert ids[:9] == [
        "table1", "table2", "table3", "table4",
        "fig4", "fig5", "fig6", "fig7", "fig8",
    ]
    assert ids == list(experiment_ids())


def test_registry_resolves_registered_functions():
    assert get_experiment("table1") is table1_model.run
    assert get_experiment("rareevent") is rareevent.run
    with pytest.raises(KeyError, match="unknown experiment"):
        get_experiment("fig99")


def test_registry_rejects_duplicate_ids():
    from repro.errors import ValidationError
    from repro.experiments.registry import register

    with pytest.raises(ValidationError, match="already registered"):
        register("table1")(lambda config=None: None)


def test_experiments_dict_shim_deprecated():
    import repro.experiments as experiments

    with pytest.warns(DeprecationWarning, match="EXPERIMENTS is deprecated"):
        legacy = experiments.EXPERIMENTS
    assert legacy == dict(iter_experiments())


def test_table1_lists_all_modes():
    result = table1_model.run()
    assert len(result.rows) == 11
    assert "ferrous_dust" in result.column("failure mode")


def test_table2_includes_current_policy():
    result = table2_strategies.run()
    assert "current-policy" in result.column("strategy")


def test_table3_validation_agrees():
    result = table3_validation.run(ExperimentConfig(n_runs=800, seed=3))
    assert any("AGREE" in note for note in result.notes)
    # Every mode is fitted within a factor ~2 of the truth.
    for true_text, fitted_text in zip(
        result.column("true mean [y]"), result.column("fitted mean [y]")
    ):
        ratio = float(fitted_text) / float(true_text)
        assert 0.3 < ratio < 3.0


def test_fig4_reliability_shape():
    result = fig4_reliability.run(CFG)
    # Curves are non-increasing in time and ordered by maintenance level.
    unmaintained = [float(x) for x in result.column("unmaintained")]
    current = [float(x) for x in result.column("current-policy(4x)")]
    assert unmaintained[0] == pytest.approx(1.0)
    assert all(b <= a + 0.02 for a, b in zip(unmaintained, unmaintained[1:]))
    # Maintenance dominates no maintenance at the horizon.
    assert current[-1] > unmaintained[-1]


def test_fig5_enf_decreases_with_inspections():
    result = fig5_enf.run(CFG)
    enf = [_estimate(cell) for cell in result.column("ENF per year")]
    # Steep drop from corrective-only to 1x/yr; saturating thereafter.
    assert enf[1] < enf[0] / 2.5
    assert enf[-1] <= enf[1]
    # The floor note is present.
    assert any("floor" in note for note in result.notes)


def test_fig6_cost_u_shape():
    result = fig6_cost.run(CFG)
    totals = [float(cell) for cell in result.column("TOTAL")]
    frequencies = [float(cell) for cell in result.column("inspections/yr")]
    # Corrective-only is the most expensive; the interior has a minimum
    # that is cheaper than both ends (U-shape).
    assert totals[0] == max(totals)
    interior_min = min(totals[1:-1])
    assert interior_min < totals[-1]
    optimum = frequencies[totals.index(min(totals))]
    assert 1.0 <= optimum <= 8.0
    assert any("optim" in note for note in result.notes)


def test_fig7_renewal_does_not_pay():
    result = fig7_renewal.run(CFG)
    totals = [float(cell) for cell in result.column("cost/yr TOTAL")]
    # The first row is the current policy without renewal; adding
    # renewal at any period costs more in total.
    assert totals[0] == min(totals)


def test_ablation_rdep_monotone():
    result = ablation_rdep.run(CFG)
    glue = [
        float(cell) for cell in result.column("glue failures /1000 joint-yr")
    ]
    # Stronger acceleration -> several-fold more glue failures.
    assert glue[-1] > 3.0 * glue[0]
    assert all(b >= a * 0.8 for a, b in zip(glue, glue[1:]))


def test_ablation_phases_prevention_grows():
    result = ablation_phases.run(CFG)
    prevented = [
        float(cell.rstrip("%")) for cell in result.column("prevented")
    ]
    # One memoryless phase: inspections can prevent (almost) nothing
    # of this mode relative to multi-phase variants.
    assert prevented[0] < prevented[-1]


def test_fig8_fleet_rates_ordered():
    result = fig8_fleet.run(CFG)
    rates = [_estimate(c) for c in result.column("ENF per joint-year")]
    assert rates[0] < rates[-1]


def test_ablation_detection_monotone():
    result = ablation_detection.run(CFG)
    enf = [_estimate(cell) for cell in result.column("ENF per year")]
    # Lower detection probability -> more failures (with MC slack).
    assert enf[-1] > enf[0]


def test_ctmc_crossval_all_within_ci():
    result = ctmc_crossval.run(ExperimentConfig(n_runs=2000, seed=11))
    assert all(cell == "yes" for cell in result.column("within CI"))


def test_table4_importance_shapes():
    result = table4_importance.run(CFG)
    assert len(result.rows) == 11
    # FV-ranked: first row is the dominant early-life mode.
    assert result.rows[0][0] == "ferrous_dust"
    # Under the current policy the no-warning modes gain share.
    modes = result.column("failure mode")
    maintained = [
        float(c.rstrip("%")) for c in result.column("share current policy")
    ]
    unmaintained = [
        float(c.rstrip("%")) for c in result.column("share unmaintained")
    ]
    rail = modes.index("rail_end_break")
    assert maintained[rail] > unmaintained[rail]


def test_uncertainty_band_contains_observed():
    result = uncertainty.run(ExperimentConfig(n_runs=600, seed=5))
    assert len(result.rows) == uncertainty.N_BOOTSTRAP
    assert any("lies within" in note for note in result.notes)


def test_sensitivity_sorted_by_swing():
    result = sensitivity.run(ExperimentConfig(n_runs=200, horizon=30.0, seed=9))
    swings = [float(cell) for cell in result.column("swing")]
    assert swings == sorted(swings, reverse=True)
    assert len(result.rows) == 11


def test_optimum_close_to_current():
    result = optimum.run(ExperimentConfig(n_runs=300, horizon=40.0, seed=5))
    frequency = float(result.rows[0][1])
    assert 1.0 <= frequency <= 9.0
    assert any("close to cost-optimal" in note for note in result.notes)


def test_periodic_crossval_all_within_ci():
    result = periodic_crossval.run(ExperimentConfig(n_runs=1500, seed=19))
    assert all(cell == "yes" for cell in result.column("within CI"))


def test_rareevent_regimes_and_agreement():
    result = rareevent.run(ExperimentConfig(n_runs=400, seed=21))
    assert result.column("scenario") == [
        "moderate", "moderate", "moderate", "rare (refined)"
    ]
    assert any("agreement" in note and "yes" in note for note in result.notes)
    assert any("substitution" in note for note in result.notes)
    # The strong-rarity row reports a genuine speedup over crude MC.
    speedup = result.column("speedup")[-1]
    assert speedup.endswith("x") and speedup != "n/a"
    assert float(speedup.rstrip("x")) > 1.0


def test_result_column_unknown_rejected():
    from repro.errors import ValidationError

    result = table1_model.run()
    with pytest.raises(ValidationError):
        result.column("nope")


def test_config_quick_reduces_runs():
    config = ExperimentConfig(n_runs=4000)
    assert config.quick().n_runs == 200
    assert config.quick().seed == config.seed


def test_config_quick_never_increases_runs():
    """Regression: quick() used to *raise* tiny configs to 100 runs."""
    config = ExperimentConfig(n_runs=40)
    assert config.quick().n_runs == 40
    # At the floor boundary the 20x reduction clamps to 100.
    assert ExperimentConfig(n_runs=100).quick().n_runs == 100
    assert ExperimentConfig(n_runs=1999).quick().n_runs == 100


def test_config_validation():
    from repro.errors import ValidationError

    with pytest.raises(ValidationError):
        ExperimentConfig(n_runs=0)
    with pytest.raises(ValidationError):
        ExperimentConfig(horizon=-1.0)
