"""Fleet heterogeneity: traffic classes and fleet aggregation."""

import pytest

from repro.eijoint.fleet import (
    DEFAULT_TRAFFIC_MIX,
    USAGE_DRIVEN_MODES,
    FleetClassResult,
    TrafficClass,
    fleet_failures_per_year,
    scale_parameters,
)
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import current_policy, no_maintenance
from repro.errors import ValidationError
from repro.stats.confidence import ConfidenceInterval


def test_traffic_class_validation():
    with pytest.raises(ValidationError):
        TrafficClass("x", fraction=0.0, intensity=1.0)
    with pytest.raises(ValidationError):
        TrafficClass("x", fraction=1.5, intensity=1.0)
    with pytest.raises(ValidationError):
        TrafficClass("x", fraction=0.5, intensity=0.0)


def test_default_mix_sums_to_one():
    assert sum(cls.fraction for cls in DEFAULT_TRAFFIC_MIX) == pytest.approx(1.0)


def test_scale_parameters_divides_usage_driven_means():
    base = default_parameters()
    scaled = scale_parameters(base, 2.0)
    for mode in base.modes:
        scaled_mode = scaled.by_name[mode.name]
        if mode.name in USAGE_DRIVEN_MODES:
            assert scaled_mode.mean_lifetime == pytest.approx(
                mode.mean_lifetime / 2.0
            )
        else:
            assert scaled_mode.mean_lifetime == mode.mean_lifetime


def test_scale_parameters_keeps_structure():
    base = default_parameters()
    scaled = scale_parameters(base, 1.5)
    for mode in base.modes:
        scaled_mode = scaled.by_name[mode.name]
        assert scaled_mode.phases == mode.phases
        assert scaled_mode.threshold == mode.threshold


def test_scale_parameters_identity():
    base = default_parameters()
    assert scale_parameters(base, 1.0) == base


def test_scale_parameters_rejects_bad_intensity():
    with pytest.raises(ValidationError):
        scale_parameters(default_parameters(), -1.0)


def test_weighted_rate():
    result = FleetClassResult(
        traffic_class=TrafficClass("x", fraction=0.25, intensity=1.0),
        failures_per_joint_year=ConfidenceInterval(0.02, 0.01, 0.03, 0.95),
    )
    assert result.weighted_rate == pytest.approx(0.005)


def test_fleet_fractions_must_sum_to_one():
    mix = (TrafficClass("a", 0.5, 1.0),)
    with pytest.raises(ValidationError):
        fleet_failures_per_year(
            lambda p: no_maintenance(p), mix=mix, n_runs=10
        )


def test_fleet_rates_ordered_by_intensity():
    per_class, total = fleet_failures_per_year(
        lambda p: current_policy(p),
        fleet_size=10_000,
        horizon=25.0,
        n_runs=400,
        seed=3,
    )
    rates = [r.failures_per_joint_year.estimate for r in per_class]
    # Heavier traffic -> more failures.
    assert rates[0] < rates[2]
    assert total > 0.0
    # Total equals the weighted per-joint rate times the fleet size.
    weighted = sum(r.weighted_rate for r in per_class)
    assert total == pytest.approx(weighted * 10_000)
