"""Minimal cut sets and path sets."""

from itertools import chain, combinations

import pytest

from repro.analysis.cutsets import minimal_cut_sets, minimal_path_sets
from repro.core.builder import FMTBuilder
from repro.errors import UnsupportedModelError


def _powerset(names):
    return chain.from_iterable(
        combinations(names, r) for r in range(len(names) + 1)
    )


def _check_cut_sets_characterize_tree(tree):
    """Cut sets must exactly characterize the structure function."""
    cut_sets = minimal_cut_sets(tree)
    names = sorted(tree.basic_events)
    for subset in _powerset(names):
        failed = set(subset)
        from_cuts = any(cut <= failed for cut in cut_sets)
        assert from_cuts == tree.evaluate(failed), f"mismatch at {failed}"
    # Minimality: removing any element from a cut set breaks it.
    for cut in cut_sets:
        for name in cut:
            assert not tree.evaluate(cut - {name})


def test_or_tree_cut_sets(simple_or_tree):
    assert minimal_cut_sets(simple_or_tree) == [
        frozenset({"a"}),
        frozenset({"b"}),
    ]


def test_and_tree_cut_sets(simple_and_tree):
    assert minimal_cut_sets(simple_and_tree) == [frozenset({"a", "b"})]


def test_voting_tree_cut_sets(voting_tree):
    cut_sets = minimal_cut_sets(voting_tree)
    assert len(cut_sets) == 3
    assert all(len(cut) == 2 for cut in cut_sets)


def test_layered_tree_characterization(layered_tree):
    _check_cut_sets_characterize_tree(layered_tree)


def test_shared_event_absorption():
    # top = a OR (a AND b): the {a, b} cut set is absorbed by {a}.
    builder = FMTBuilder("absorb")
    builder.basic_event("a", rate=1.0)
    builder.basic_event("b", rate=1.0)
    builder.and_gate("ab", ["a", "b"])
    builder.or_gate("top", ["a", "ab"])
    tree = builder.build("top")
    assert minimal_cut_sets(tree) == [frozenset({"a"})]


def test_inhibit_acts_as_and():
    builder = FMTBuilder("inh")
    builder.basic_event("cond", rate=1.0)
    builder.basic_event("x", rate=1.0)
    builder.inhibit_gate("top", "cond", ["x"])
    tree = builder.build("top")
    assert minimal_cut_sets(tree) == [frozenset({"cond", "x"})]


def test_pand_rejected_without_flag():
    builder = FMTBuilder("pand")
    builder.basic_event("a", rate=1.0)
    builder.basic_event("b", rate=1.0)
    builder.pand_gate("top", ["a", "b"])
    tree = builder.build("top")
    with pytest.raises(UnsupportedModelError):
        minimal_cut_sets(tree)
    assert minimal_cut_sets(tree, treat_pand_as_and=True) == [
        frozenset({"a", "b"})
    ]


def test_cut_sets_sorted_by_size_then_names(layered_tree):
    cut_sets = minimal_cut_sets(layered_tree)
    sizes = [len(cut) for cut in cut_sets]
    assert sizes == sorted(sizes)


def test_explosion_guard():
    builder = FMTBuilder("big")
    names = [f"x{i}" for i in range(14)]
    for name in names:
        builder.basic_event(name, rate=1.0)
    builder.voting_gate("top", 7, names)
    tree = builder.build("top")
    with pytest.raises(UnsupportedModelError):
        minimal_cut_sets(tree, max_cut_sets=100)


def test_path_sets_or_tree(simple_or_tree):
    # Keeping both a and b up keeps an OR system up.
    assert minimal_path_sets(simple_or_tree) == [frozenset({"a", "b"})]


def test_path_sets_and_tree(simple_and_tree):
    assert minimal_path_sets(simple_and_tree) == [
        frozenset({"a"}),
        frozenset({"b"}),
    ]


def test_path_sets_voting(voting_tree):
    # 2-of-3 fails <=> at most 1 working; path sets are pairs.
    path_sets = minimal_path_sets(voting_tree)
    assert len(path_sets) == 3
    assert all(len(path) == 2 for path in path_sets)


def test_path_sets_complement_cut_sets(layered_tree):
    """A set of working events avoids failure iff it hits every cut set."""
    cut_sets = minimal_cut_sets(layered_tree)
    path_sets = minimal_path_sets(layered_tree)
    names = set(layered_tree.basic_events)
    for path in path_sets:
        failed = names - path
        assert not any(cut <= failed for cut in cut_sets)


def test_pand_rejected_for_path_sets():
    builder = FMTBuilder("pand")
    builder.basic_event("a", rate=1.0)
    builder.basic_event("b", rate=1.0)
    builder.pand_gate("top", ["a", "b"])
    tree = builder.build("top")
    with pytest.raises(UnsupportedModelError):
        minimal_path_sets(tree)


def test_eijoint_cut_sets():
    from repro.eijoint import build_ei_joint_fmt

    tree = build_ei_joint_fmt()
    cut_sets = minimal_cut_sets(tree)
    singletons = [cut for cut in cut_sets if len(cut) == 1]
    pairs = [cut for cut in cut_sets if len(cut) == 2]
    # 7 single-event modes + C(4,2)=6 bolt pairs.
    assert len(singletons) == 7
    assert len(pairs) == 6
    assert frozenset({"bolt_1", "bolt_2"}) in pairs
