"""Columnar trajectory batches: equivalence with the object path.

The contract under test is *bit-identity*: every comparison of KPI
floats below uses exact ``==``, not ``pytest.approx`` — the columnar
path must reproduce the per-object reference arithmetic to the last
ulp, or cached/golden results would silently drift.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import ValidationError
from repro.maintenance.costs import CostBreakdown
from repro.simulation.batch import TrajectoryAccumulator, TrajectoryBatch
from repro.simulation.metrics import reliability_curve, summarize
from repro.simulation.trace import Trajectory

HORIZON = 10.0


def _trajectory(
    failures=(),
    downtime=0.0,
    costs=None,
    n_inspections=0,
    n_preventive_actions=0,
    n_corrective_replacements=0,
):
    trajectory = Trajectory(horizon=HORIZON, events_recorded=False)
    trajectory.failure_times = list(failures)
    trajectory.downtime = downtime
    trajectory.costs = costs if costs is not None else CostBreakdown()
    trajectory.n_inspections = n_inspections
    trajectory.n_preventive_actions = n_preventive_actions
    trajectory.n_corrective_replacements = n_corrective_replacements
    return trajectory


# Awkward floats on purpose: sums over these expose any change in the
# reduction order at the ulp level.
_money = st.floats(
    min_value=0.0, max_value=1e7, allow_nan=False, allow_infinity=False
)
_counts = st.integers(min_value=0, max_value=500)


@st.composite
def trajectories(draw):
    n_failures = draw(st.integers(min_value=0, max_value=4))
    failures = sorted(
        draw(
            st.lists(
                st.floats(min_value=0.0, max_value=HORIZON, allow_nan=False),
                min_size=n_failures,
                max_size=n_failures,
            )
        )
    )
    return _trajectory(
        failures=failures,
        downtime=draw(st.floats(min_value=0.0, max_value=HORIZON)),
        costs=CostBreakdown(
            inspections=draw(_money),
            preventive=draw(_money),
            corrective=draw(_money),
            failures=draw(_money),
            downtime=draw(_money),
        ),
        n_inspections=draw(_counts),
        n_preventive_actions=draw(_counts),
        n_corrective_replacements=draw(_counts),
    )


def _assert_summaries_identical(left, right):
    assert left.n_runs == right.n_runs
    assert left.horizon == right.horizon
    for name in (
        "unreliability",
        "expected_failures",
        "failures_per_year",
        "availability",
        "cost_per_year",
    ):
        a, b = getattr(left, name), getattr(right, name)
        assert (a.estimate, a.lower, a.upper) == (b.estimate, b.lower, b.upper), name
    assert left.cost_breakdown_per_year == right.cost_breakdown_per_year
    assert left.inspections_per_year == right.inspections_per_year
    assert left.preventive_actions_per_year == right.preventive_actions_per_year
    assert (
        left.corrective_replacements_per_year
        == right.corrective_replacements_per_year
    )


@settings(max_examples=60, deadline=None)
@given(st.lists(trajectories(), min_size=1, max_size=30))
def test_summarize_batch_identical_to_objects(objects):
    batch = TrajectoryBatch.from_trajectories(objects)
    _assert_summaries_identical(summarize(objects), summarize(batch))


@settings(max_examples=30, deadline=None)
@given(st.lists(trajectories(), min_size=1, max_size=30))
def test_reliability_curve_batch_identical_to_objects(objects):
    grid = [0.0, 2.5, 5.0, 7.5, HORIZON]
    batch = TrajectoryBatch.from_trajectories(objects)
    _, from_objects = reliability_curve(objects, grid)
    _, from_batch = reliability_curve(batch, grid)
    assert from_objects == from_batch


@settings(max_examples=30, deadline=None)
@given(st.lists(trajectories(), min_size=1, max_size=30))
def test_accumulator_streaming_equals_bulk_conversion(objects):
    accumulator = TrajectoryAccumulator()
    for trajectory in objects:
        accumulator.add(trajectory)
    streamed = accumulator.build()
    bulk = TrajectoryBatch.from_trajectories(objects)
    assert streamed.horizon == bulk.horizon
    np.testing.assert_array_equal(streamed.failure_times, bulk.failure_times)
    np.testing.assert_array_equal(streamed.failure_offsets, bulk.failure_offsets)
    np.testing.assert_array_equal(streamed.downtime, bulk.downtime)
    for field, column in bulk.costs.items():
        np.testing.assert_array_equal(streamed.costs[field], column)
    np.testing.assert_array_equal(streamed.n_inspections, bulk.n_inspections)
    np.testing.assert_array_equal(
        streamed.n_preventive_actions, bulk.n_preventive_actions
    )
    np.testing.assert_array_equal(
        streamed.n_corrective_replacements, bulk.n_corrective_replacements
    )


@settings(max_examples=20, deadline=None)
@given(
    st.lists(trajectories(), min_size=1, max_size=10),
    st.lists(trajectories(), min_size=1, max_size=10),
)
def test_add_batch_and_merge_equal_concatenation(first, second):
    whole = TrajectoryBatch.from_trajectories(first + second)
    merged = TrajectoryBatch.merge(
        [
            TrajectoryBatch.from_trajectories(first),
            TrajectoryBatch.from_trajectories(second),
        ]
    )
    np.testing.assert_array_equal(whole.failure_times, merged.failure_times)
    np.testing.assert_array_equal(whole.failure_offsets, merged.failure_offsets)
    np.testing.assert_array_equal(whole.downtime, merged.downtime)
    _assert_summaries_identical(summarize(whole), summarize(merged))


@settings(max_examples=20, deadline=None)
@given(st.lists(trajectories(), min_size=1, max_size=15))
def test_to_trajectories_round_trip(objects):
    batch = TrajectoryBatch.from_trajectories(objects)
    rebuilt = batch.to_trajectories()
    assert len(rebuilt) == len(objects)
    for original, copy in zip(objects, rebuilt):
        assert copy.horizon == original.horizon
        assert copy.failure_times == original.failure_times
        assert copy.downtime == original.downtime
        assert copy.costs == original.costs
        assert copy.n_inspections == original.n_inspections
        assert copy.events_recorded is False
    _assert_summaries_identical(summarize(objects), summarize(rebuilt))


def test_first_failure_and_counts():
    batch = TrajectoryBatch.from_trajectories(
        [
            _trajectory(failures=[2.0, 5.0]),
            _trajectory(),
            _trajectory(failures=[7.5]),
        ]
    )
    assert list(batch.n_failures) == [2, 0, 1]
    assert list(batch.first_failure) == [2.0, np.inf, 7.5]
    assert list(batch.failure_times_of(0)) == [2.0, 5.0]
    assert list(batch.failure_times_of(1)) == []
    assert len(batch) == batch.n_runs == 3
    assert batch.nbytes > 0


def test_from_trajectories_rejects_empty_and_mixed_horizons():
    with pytest.raises(ValidationError):
        TrajectoryBatch.from_trajectories([])
    other = Trajectory(horizon=20.0)
    with pytest.raises(ValidationError):
        TrajectoryBatch.from_trajectories([_trajectory(), other])


def test_accumulator_rejects_mixed_horizons():
    accumulator = TrajectoryAccumulator(horizon=HORIZON)
    accumulator.add(_trajectory())
    with pytest.raises(ValidationError):
        accumulator.add(Trajectory(horizon=20.0))


def test_accumulator_empty_build():
    with pytest.raises(ValidationError):
        TrajectoryAccumulator().build()
    empty = TrajectoryAccumulator(horizon=HORIZON).build()
    assert len(empty) == 0
    with pytest.raises(ValidationError):
        summarize(empty)


def test_accumulator_reusable_after_build():
    accumulator = TrajectoryAccumulator(horizon=HORIZON)
    accumulator.add(_trajectory(failures=[1.0]))
    first = accumulator.build()
    accumulator.add(_trajectory(failures=[2.0, 3.0]))
    second = accumulator.build()
    # The first build is untouched by the later append.
    assert list(first.n_failures) == [1]
    assert list(second.n_failures) == [1, 2]


def test_batch_offsets_validation():
    good = TrajectoryBatch.from_trajectories([_trajectory(failures=[1.0])])
    with pytest.raises(ValidationError):
        TrajectoryBatch(
            horizon=HORIZON,
            failure_times=good.failure_times,
            failure_offsets=np.array([0, 2], dtype=np.int64),  # exceeds data
            downtime=good.downtime,
            costs=good.costs,
            n_inspections=good.n_inspections,
            n_preventive_actions=good.n_preventive_actions,
            n_corrective_replacements=good.n_corrective_replacements,
        )
