"""Discrete-event engine: ordering, cancellation, clock discipline."""

import pytest

from repro.errors import SimulationError
from repro.simulation.engine import Engine


def test_events_execute_in_time_order():
    engine = Engine()
    log = []
    engine.schedule(2.0, lambda: log.append("b"))
    engine.schedule(1.0, lambda: log.append("a"))
    engine.schedule(3.0, lambda: log.append("c"))
    engine.run_until(10.0)
    assert log == ["a", "b", "c"]


def test_ties_broken_by_priority_then_sequence():
    engine = Engine()
    log = []
    engine.schedule(1.0, lambda: log.append("low2"), priority=2)
    engine.schedule(1.0, lambda: log.append("first"), priority=0)
    engine.schedule(1.0, lambda: log.append("second"), priority=0)
    engine.schedule(1.0, lambda: log.append("low1"), priority=1)
    engine.run_until(5.0)
    assert log == ["first", "second", "low1", "low2"]


def test_clock_advances_to_event_times():
    engine = Engine()
    times = []
    engine.schedule(1.5, lambda: times.append(engine.now))
    engine.run_until(2.0)
    assert times == [1.5]
    assert engine.now == 2.0


def test_run_until_does_not_execute_later_events():
    engine = Engine()
    log = []
    engine.schedule(5.0, lambda: log.append("late"))
    engine.run_until(2.0)
    assert log == []
    engine.run_until(6.0)
    assert log == ["late"]


def test_cancelled_events_do_not_run():
    engine = Engine()
    log = []
    handle = engine.schedule(1.0, lambda: log.append("x"))
    handle.cancel()
    engine.run_until(2.0)
    assert log == []


def test_cancel_after_execution_is_noop():
    engine = Engine()
    handle = engine.schedule(1.0, lambda: None)
    engine.run_until(2.0)
    handle.cancel()  # must not raise


def test_pending_counts_non_cancelled():
    engine = Engine()
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    assert engine.pending == 2
    handle.cancel()
    assert engine.pending == 1


def test_pending_tracks_execution_and_repeat_cancels():
    engine = Engine()
    first = engine.schedule(1.0, lambda: None)
    second = engine.schedule(2.0, lambda: None)
    second.cancel()
    second.cancel()  # double cancel must not double-decrement
    assert engine.pending == 1
    assert engine.step() is True
    assert engine.pending == 0
    first.cancel()  # cancelling after execution must not go negative
    assert engine.pending == 0


def test_pending_stays_exact_through_a_run():
    engine = Engine()
    handles = [engine.schedule(float(i + 1), lambda: None) for i in range(5)]
    handles[3].cancel()
    engine.run_until(3.0)  # executes events at t=1, 2, 3
    assert engine.pending == 1  # only t=5 remains live
    engine.run_until(10.0)
    assert engine.pending == 0


def test_peek_time_skips_cancelled():
    engine = Engine()
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    handle.cancel()
    assert engine.peek_time() == 2.0


def test_peek_time_empty():
    assert Engine().peek_time() is None


def test_schedule_in_past_rejected():
    engine = Engine()
    engine.schedule(5.0, lambda: None)
    engine.run_until(5.0)
    with pytest.raises(SimulationError):
        engine.schedule(4.0, lambda: None)


def test_schedule_nonfinite_rejected():
    engine = Engine()
    with pytest.raises(SimulationError):
        engine.schedule(float("inf"), lambda: None)
    with pytest.raises(SimulationError):
        engine.schedule(float("nan"), lambda: None)


def test_schedule_after_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Engine().schedule_after(-1.0, lambda: None)


def test_events_can_schedule_events():
    engine = Engine()
    log = []

    def first():
        log.append(engine.now)
        engine.schedule_after(1.0, lambda: log.append(engine.now))

    engine.schedule(1.0, first)
    engine.run_until(5.0)
    assert log == [1.0, 2.0]


def test_stop_halts_run():
    engine = Engine()
    log = []
    engine.schedule(1.0, lambda: (log.append(1), engine.stop()))
    engine.schedule(2.0, lambda: log.append(2))
    engine.run_until(10.0)
    assert log == [1]
    # Clock stays at the stop point, not t_end.
    assert engine.now == 1.0


def test_run_until_backwards_rejected():
    engine = Engine()
    engine.run_until(5.0)
    with pytest.raises(SimulationError):
        engine.run_until(1.0)


def test_reentrant_run_rejected():
    engine = Engine()
    errors = []

    def reenter():
        try:
            engine.run_until(10.0)
        except SimulationError as exc:
            errors.append(exc)

    engine.schedule(1.0, reenter)
    engine.run_until(5.0)
    assert len(errors) == 1


def test_step_returns_false_when_empty():
    assert Engine().step() is False


def test_step_executes_single_event():
    engine = Engine()
    log = []
    engine.schedule(1.0, lambda: log.append("x"))
    assert engine.step() is True
    assert log == ["x"]
    assert engine.now == 1.0
