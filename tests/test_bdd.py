"""BDD construction and probability evaluation."""

from itertools import chain, combinations

import pytest

from repro.analysis.bdd import BDD, ONE, ZERO, build_bdd
from repro.core.builder import FMTBuilder
from repro.errors import AnalysisError, UnsupportedModelError


def _assignments(names):
    for subset in chain.from_iterable(
        combinations(names, r) for r in range(len(names) + 1)
    ):
        yield {name: name in subset for name in names}


def _brute_force_probability(tree, probabilities):
    total = 0.0
    names = sorted(tree.basic_events)
    for assignment in _assignments(names):
        if tree.evaluate(assignment):
            weight = 1.0
            for name in names:
                p = probabilities[name]
                weight *= p if assignment[name] else (1.0 - p)
            total += weight
    return total


@pytest.mark.parametrize(
    "fixture_name",
    ["simple_or_tree", "simple_and_tree", "voting_tree", "layered_tree"],
)
def test_bdd_agrees_with_structure_function(fixture_name, request):
    tree = request.getfixturevalue(fixture_name)
    bdd, root = build_bdd(tree)
    for assignment in _assignments(sorted(tree.basic_events)):
        assert bdd.evaluate(root, assignment) == tree.evaluate(assignment)


@pytest.mark.parametrize(
    "fixture_name",
    ["simple_or_tree", "simple_and_tree", "voting_tree", "layered_tree"],
)
def test_bdd_probability_matches_brute_force(fixture_name, request):
    tree = request.getfixturevalue(fixture_name)
    probabilities = {
        name: 0.1 + 0.13 * i for i, name in enumerate(sorted(tree.basic_events))
    }
    bdd, root = build_bdd(tree)
    expected = _brute_force_probability(tree, probabilities)
    assert bdd.probability(root, probabilities) == pytest.approx(expected)


def test_or_probability_closed_form(simple_or_tree):
    bdd, root = build_bdd(simple_or_tree)
    p = bdd.probability(root, {"a": 0.2, "b": 0.3})
    assert p == pytest.approx(1.0 - 0.8 * 0.7)


def test_and_probability_closed_form(simple_and_tree):
    bdd, root = build_bdd(simple_and_tree)
    assert bdd.probability(root, {"a": 0.2, "b": 0.3}) == pytest.approx(0.06)


def test_custom_variable_order_same_probability(layered_tree):
    probabilities = {name: 0.3 for name in layered_tree.basic_events}
    default_bdd, default_root = build_bdd(layered_tree)
    order = sorted(layered_tree.basic_events, reverse=True)
    custom_bdd, custom_root = build_bdd(layered_tree, order=order)
    assert custom_bdd.probability(
        custom_root, probabilities
    ) == pytest.approx(default_bdd.probability(default_root, probabilities))


def test_incomplete_order_rejected(layered_tree):
    with pytest.raises(AnalysisError):
        build_bdd(layered_tree, order=["a", "b"])


def test_duplicate_order_rejected():
    with pytest.raises(AnalysisError):
        BDD(["a", "a"])


def test_pand_rejected_without_flag():
    builder = FMTBuilder("pand")
    builder.basic_event("a", rate=1.0)
    builder.basic_event("b", rate=1.0)
    builder.pand_gate("top", ["a", "b"])
    tree = builder.build("top")
    with pytest.raises(UnsupportedModelError):
        build_bdd(tree)
    bdd, root = build_bdd(tree, treat_pand_as_and=True)
    assert bdd.probability(root, {"a": 0.5, "b": 0.5}) == pytest.approx(0.25)


def test_missing_probability_rejected(simple_or_tree):
    bdd, root = build_bdd(simple_or_tree)
    with pytest.raises(AnalysisError):
        bdd.probability(root, {"a": 0.5})


def test_out_of_range_probability_rejected(simple_or_tree):
    bdd, root = build_bdd(simple_or_tree)
    with pytest.raises(AnalysisError):
        bdd.probability(root, {"a": 1.5, "b": 0.5})


def test_reduction_shares_nodes():
    # x OR x (through two gates) must reduce to the single variable.
    builder = FMTBuilder("dup")
    builder.basic_event("x", rate=1.0)
    builder.basic_event("y", rate=1.0)
    builder.and_gate("left", ["x", "y"])
    builder.and_gate("right", ["y", "x"])
    builder.or_gate("top", ["left", "right"])
    tree = builder.build("top")
    bdd, root = build_bdd(tree)
    # left == right, so the whole tree is x AND y: exactly 2 nodes.
    assert bdd.size(root) == 2


def test_terminal_constants():
    bdd = BDD(["x"])
    assert bdd.apply_or(ZERO, ONE) == ONE
    assert bdd.apply_and(ZERO, ONE) == ZERO
    assert bdd.negate(ONE) == ZERO


def test_negate_involution():
    bdd = BDD(["x", "y"])
    x = bdd.var("x")
    y = bdd.var("y")
    f = bdd.apply_or(x, y)
    assert bdd.negate(bdd.negate(f)) == f


def test_unknown_variable_rejected():
    bdd = BDD(["x"])
    with pytest.raises(AnalysisError):
        bdd.var("z")


def test_evaluate_missing_assignment_rejected(simple_or_tree):
    bdd, root = build_bdd(simple_or_tree)
    # a=False forces the traversal to consult the missing variable b.
    with pytest.raises(AnalysisError):
        bdd.evaluate(root, {"a": False})


def test_voting_gate_bdd_size_polynomial():
    """A k-of-n gate BDD stays small (k*(n-k+1)-ish), not exponential."""
    builder = FMTBuilder("vote")
    names = [f"x{i}" for i in range(12)]
    for name in names:
        builder.basic_event(name, rate=1.0)
    builder.voting_gate("top", 6, names)
    tree = builder.build("top")
    bdd, root = build_bdd(tree)
    assert bdd.size(root) < 100
