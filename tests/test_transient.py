"""Transient and steady-state CTMC solutions against closed forms."""

import math

import numpy as np
import pytest

from repro.ctmc.chain import CTMCBuilder
from repro.ctmc.transient import (
    steady_state,
    transient_distribution,
    transient_grid,
)
from repro.errors import AnalysisError


def _birth_death(up_rate=2.0, down_rate=3.0):
    builder = CTMCBuilder()
    builder.add_transition("up", "down", up_rate)
    builder.add_transition("down", "up", down_rate)
    return builder.build(initial="up")


def _absorbing(rate=0.5):
    builder = CTMCBuilder()
    builder.add_transition("alive", "dead", rate)
    return builder.build(initial="alive")


def test_transient_at_zero_is_initial():
    chain = _birth_death()
    pi = transient_distribution(chain, 0.0)
    assert np.allclose(pi, chain.initial)


def test_absorbing_matches_exponential_cdf():
    chain = _absorbing(rate=0.5)
    dead = chain.index_of("dead")
    for t in (0.1, 1.0, 4.0, 10.0):
        expected = 1.0 - math.exp(-0.5 * t)
        assert transient_distribution(chain, t)[dead] == pytest.approx(
            expected, abs=1e-10
        )


def test_two_state_closed_form():
    """P(up at t) = pi_up + (1 - pi_up) e^{-(a+b)t} for start in up."""
    a, b = 2.0, 3.0
    chain = _birth_death(a, b)
    up = chain.index_of("up")
    stationary_up = b / (a + b)
    for t in (0.05, 0.3, 1.0, 5.0):
        expected = stationary_up + (1 - stationary_up) * math.exp(-(a + b) * t)
        assert transient_distribution(chain, t)[up] == pytest.approx(
            expected, abs=1e-10
        )


def test_distribution_sums_to_one():
    chain = _birth_death()
    for t in (0.1, 1.0, 10.0, 100.0):
        assert transient_distribution(chain, t).sum() == pytest.approx(1.0)


def test_negative_time_rejected():
    with pytest.raises(AnalysisError):
        transient_distribution(_birth_death(), -1.0)


def test_custom_initial_distribution():
    chain = _birth_death()
    pi0 = np.array([0.5, 0.5])
    pi = transient_distribution(chain, 1e6, initial=pi0)
    assert pi[chain.index_of("up")] == pytest.approx(0.6, abs=1e-6)


def test_grid_matches_pointwise():
    chain = _birth_death()
    times = [0.0, 0.5, 1.0, 2.0]
    grid = transient_grid(chain, times)
    for row, t in zip(grid, times):
        assert np.allclose(row, transient_distribution(chain, t), atol=1e-9)


def test_grid_requires_sorted_times():
    with pytest.raises(AnalysisError):
        transient_grid(_birth_death(), [1.0, 0.5])


def test_grid_empty():
    assert transient_grid(_birth_death(), []).shape == (0, 2)


def test_steady_state_two_state():
    chain = _birth_death(2.0, 3.0)
    pi = steady_state(chain)
    assert pi[chain.index_of("up")] == pytest.approx(0.6)
    assert pi[chain.index_of("down")] == pytest.approx(0.4)


def test_steady_state_matches_long_run_transient():
    builder = CTMCBuilder()
    builder.add_transition("a", "b", 1.0)
    builder.add_transition("b", "c", 2.0)
    builder.add_transition("c", "a", 0.5)
    chain = builder.build()
    pi = steady_state(chain)
    pi_long = transient_distribution(chain, 500.0)
    assert np.allclose(pi, pi_long, atol=1e-6)


def test_steady_state_single_state():
    builder = CTMCBuilder()
    builder.add_state("only")
    chain = builder.build()
    assert steady_state(chain)[0] == pytest.approx(1.0)


def test_stiff_chain_stable():
    """Uniformization must stay stable with widely separated rates."""
    builder = CTMCBuilder()
    builder.add_transition("a", "b", 1e4)
    builder.add_transition("b", "a", 1e-2)
    chain = builder.build(initial="a")
    pi = transient_distribution(chain, 1.0)
    assert pi.sum() == pytest.approx(1.0)
    assert np.all(pi >= -1e-12)
