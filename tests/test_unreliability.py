"""Static unreliability: methods agree, bounds bound, MTTF integrates."""

import math

import pytest

from repro.analysis.unreliability import (
    basic_event_probabilities,
    mean_time_to_failure,
    unreliability,
    unreliability_bounds,
)
from repro.core.builder import FMTBuilder
from repro.errors import AnalysisError, UnsupportedModelError
from repro.maintenance.modules import InspectionModule
from repro.maintenance.actions import clean


def test_event_probabilities_are_cdfs(layered_tree):
    probabilities = basic_event_probabilities(layered_tree, 2.0)
    for name, event in layered_tree.basic_events.items():
        assert probabilities[name] == pytest.approx(event.lifetime_cdf(2.0))


def test_event_probabilities_negative_time_rejected(simple_or_tree):
    with pytest.raises(AnalysisError):
        basic_event_probabilities(simple_or_tree, -1.0)


def test_or_tree_closed_form(simple_or_tree):
    # P = 1 - e^{-0.5t} e^{-0.25t}
    t = 2.0
    expected = 1.0 - math.exp(-0.75 * t)
    assert unreliability(simple_or_tree, t) == pytest.approx(expected)


def test_and_tree_closed_form(simple_and_tree):
    t = 2.0
    expected = (1.0 - math.exp(-0.5 * t)) * (1.0 - math.exp(-0.25 * t))
    assert unreliability(simple_and_tree, t) == pytest.approx(expected)


@pytest.mark.parametrize(
    "fixture_name", ["simple_or_tree", "voting_tree", "layered_tree"]
)
def test_methods_agree(fixture_name, request):
    tree = request.getfixturevalue(fixture_name)
    exact = unreliability(tree, 1.5, method="bdd")
    inclusion = unreliability(tree, 1.5, method="inclusion-exclusion")
    assert inclusion == pytest.approx(exact, abs=1e-9)


def test_rare_event_is_upper_bound(layered_tree):
    exact = unreliability(layered_tree, 1.0, method="bdd")
    rare = unreliability(layered_tree, 1.0, method="rare-event")
    assert rare >= exact - 1e-12


def test_unknown_method_rejected(simple_or_tree):
    with pytest.raises(AnalysisError):
        unreliability(simple_or_tree, 1.0, method="magic")


def test_monotone_in_time(layered_tree):
    values = [unreliability(layered_tree, t) for t in (0.0, 1.0, 2.0, 5.0, 20.0)]
    assert values[0] == 0.0
    assert all(b >= a - 1e-12 for a, b in zip(values, values[1:]))


def test_bounds_bracket_exact(layered_tree):
    for t in (0.5, 2.0, 8.0):
        exact = unreliability(layered_tree, t)
        lower, upper = unreliability_bounds(layered_tree, t)
        assert lower <= exact + 1e-12
        assert upper >= exact - 1e-12


def test_rdep_tree_rejected(maintained_tree):
    with pytest.raises(UnsupportedModelError):
        unreliability(maintained_tree, 1.0)
    # With the flag, the structure is quantified ignoring the RDEP.
    value = unreliability(maintained_tree, 1.0, ignore_dependencies=True)
    assert 0.0 < value < 1.0


def test_maintained_tree_rejected(maintained_tree):
    module = InspectionModule(
        "i", period=1.0, targets=["wear"], action=clean()
    )
    tree = maintained_tree.with_maintenance(inspections=[module])
    with pytest.raises(UnsupportedModelError):
        unreliability(tree, 1.0, ignore_dependencies=True)
    value = unreliability(
        tree, 1.0, ignore_dependencies=True, ignore_maintenance=True
    )
    assert 0.0 < value < 1.0


def test_mttf_single_exponential():
    builder = FMTBuilder("one")
    builder.basic_event("x", rate=0.25)
    builder.or_gate("top", ["x"])
    tree = builder.build("top")
    assert mean_time_to_failure(tree) == pytest.approx(4.0, rel=1e-6)


def test_mttf_or_of_exponentials(simple_or_tree):
    # Competing exponentials: MTTF = 1 / (0.5 + 0.25).
    assert mean_time_to_failure(simple_or_tree) == pytest.approx(
        1.0 / 0.75, rel=1e-6
    )


def test_mttf_and_of_exponentials(simple_and_tree):
    # max of exponentials: 1/l1 + 1/l2 - 1/(l1+l2).
    expected = 2.0 + 4.0 - 1.0 / 0.75
    assert mean_time_to_failure(simple_and_tree) == pytest.approx(
        expected, rel=1e-6
    )


def test_mttf_erlang_component():
    builder = FMTBuilder("erl")
    builder.degraded_event("w", phases=4, mean=8.0)
    builder.or_gate("top", ["w"])
    tree = builder.build("top")
    assert mean_time_to_failure(tree) == pytest.approx(8.0, rel=1e-6)


def test_inclusion_exclusion_cut_set_cap():
    builder = FMTBuilder("many")
    names = [f"x{i}" for i in range(25)]
    for name in names:
        builder.basic_event(name, rate=1.0)
    builder.or_gate("top", names)
    tree = builder.build("top")
    with pytest.raises(UnsupportedModelError):
        unreliability(tree, 1.0, method="inclusion-exclusion")
    # BDD handles it fine.
    assert unreliability(tree, 1.0, method="bdd") > 0.99
