"""Tree container: validation, traversal, structure function."""

import pytest

from repro.core.builder import FMTBuilder
from repro.core.dependencies import RateDependency
from repro.core.events import BasicEvent
from repro.core.gates import AndGate, OrGate
from repro.core.tree import FaultMaintenanceTree, FaultTree
from repro.errors import ModelError, ValidationError
from repro.maintenance.actions import clean
from repro.maintenance.modules import InspectionModule, RepairModule


def test_fault_tree_alias():
    assert FaultTree is FaultMaintenanceTree


def test_nodes_collected(layered_tree):
    assert set(layered_tree.basic_events) == {"a", "b", "c", "d"}
    assert set(layered_tree.gates) == {"ab", "bcd", "top"}


def test_single_event_tree():
    event = BasicEvent.exponential("only", rate=1.0)
    tree = FaultMaintenanceTree(event)
    assert tree.top is event
    assert tree.evaluate({"only"})


def test_duplicate_names_rejected():
    a1 = BasicEvent.exponential("a", rate=1.0)
    a2 = BasicEvent.exponential("a", rate=2.0)
    with pytest.raises(ModelError):
        FaultMaintenanceTree(OrGate("top", [a1, a2]))


def test_shared_subtree_allowed():
    shared = BasicEvent.exponential("shared", rate=1.0)
    left = AndGate("left", [shared, BasicEvent.exponential("l", rate=1.0)])
    right = AndGate("right", [shared, BasicEvent.exponential("r", rate=1.0)])
    tree = FaultMaintenanceTree(OrGate("top", [left, right]))
    assert set(tree.basic_events) == {"shared", "l", "r"}
    assert tree.parents_of("shared") == ("left", "right") or set(
        tree.parents_of("shared")
    ) == {"left", "right"}


def test_element_lookup(layered_tree):
    assert layered_tree.element("ab").name == "ab"
    with pytest.raises(ModelError):
        layered_tree.element("nope")


def test_parents_of(layered_tree):
    assert set(layered_tree.parents_of("b")) == {"ab", "bcd"}
    assert layered_tree.parents_of("top") == ()


def test_descendants_of(layered_tree):
    assert layered_tree.descendants_of("ab") == {"a", "b"}
    assert "d" in layered_tree.descendants_of("top")


def test_depth(layered_tree, simple_or_tree):
    assert layered_tree.depth() == 2
    assert simple_or_tree.depth() == 1


def test_evaluate_with_set(simple_or_tree):
    assert simple_or_tree.evaluate({"a"})
    assert not simple_or_tree.evaluate(set())


def test_evaluate_with_mapping(simple_and_tree):
    assert simple_and_tree.evaluate({"a": True, "b": True})
    assert not simple_and_tree.evaluate({"a": True, "b": False})


def test_evaluate_unknown_event_rejected(simple_or_tree):
    with pytest.raises(ModelError):
        simple_or_tree.evaluate({"zz"})


def test_evaluate_voting(voting_tree):
    assert not voting_tree.evaluate({"a"})
    assert voting_tree.evaluate({"a", "c"})


def test_evaluate_layered(layered_tree):
    # ab = a AND b; bcd = 2-of-3(b, c, d); top = ab OR bcd
    assert not layered_tree.evaluate({"a"})
    assert layered_tree.evaluate({"a", "b"})
    assert layered_tree.evaluate({"c", "d"})
    assert not layered_tree.evaluate({"c"})


def test_dependency_validation_unknown_trigger():
    builder = FMTBuilder("t")
    builder.basic_event("a", rate=1.0)
    builder.or_gate("top", ["a"])
    tree = builder.build("top")
    with pytest.raises(ModelError):
        FaultMaintenanceTree(
            tree.top,
            dependencies=[RateDependency("d", "ghost", ["a"], 2.0)],
        )


def test_dependency_target_must_be_basic(layered_tree):
    with pytest.raises(ModelError):
        FaultMaintenanceTree(
            layered_tree.top,
            dependencies=[RateDependency("d", "a", ["ab"], 2.0)],
        )


def test_dependency_name_collision(maintained_tree):
    with pytest.raises(ModelError):
        FaultMaintenanceTree(
            maintained_tree.top,
            dependencies=[
                RateDependency("top", "shock", ["wear"], 2.0),
            ],
        )


def test_inspection_target_needs_threshold(simple_or_tree):
    module = InspectionModule("m", period=1.0, targets=["a"], action=clean())
    with pytest.raises(ModelError):
        simple_or_tree.with_maintenance(inspections=[module])


def test_inspection_unknown_target(maintained_tree):
    module = InspectionModule("m", period=1.0, targets=["ghost"])
    with pytest.raises(ModelError):
        maintained_tree.with_maintenance(inspections=[module])


def test_repair_module_attaches(maintained_tree):
    module = RepairModule("renew", period=10.0, targets=["wear", "shock"])
    tree = maintained_tree.with_maintenance(repairs=[module])
    assert len(tree.repairs) == 1
    # The original tree is untouched.
    assert len(maintained_tree.repairs) == 0


def test_duplicate_module_names_rejected(maintained_tree):
    module_a = InspectionModule("m", period=1.0, targets=["wear"])
    module_b = RepairModule("m", period=2.0, targets=["wear"])
    with pytest.raises(ModelError):
        maintained_tree.with_maintenance(
            inspections=[module_a], repairs=[module_b]
        )


def test_without_dependencies(maintained_tree):
    stripped = maintained_tree.without_dependencies()
    assert stripped.dependencies == ()
    assert maintained_tree.dependencies  # original keeps them


def test_with_dependency_factor(maintained_tree):
    scaled = maintained_tree.with_dependency_factor(9.0)
    assert all(dep.factor == 9.0 for dep in scaled.dependencies)


def test_has_dynamic_gates():
    builder = FMTBuilder("t")
    builder.basic_event("a", rate=1.0)
    builder.basic_event("b", rate=1.0)
    builder.pand_gate("top", ["a", "b"])
    assert builder.build("top").has_dynamic_gates


def test_dict_round_trip(maintained_tree, inspection_strategy):
    tree = inspection_strategy.apply(maintained_tree)
    clone = FaultMaintenanceTree.from_dict(tree.to_dict())
    assert clone.to_dict() == tree.to_dict()


def test_dict_round_trip_preserves_semantics(layered_tree):
    clone = FaultMaintenanceTree.from_dict(layered_tree.to_dict())
    for failed in [set(), {"a", "b"}, {"c", "d"}, {"b"}]:
        assert clone.evaluate(failed) == layered_tree.evaluate(failed)


def test_repr(maintained_tree):
    text = repr(maintained_tree)
    assert "maintained" in text and "|events|=2" in text
