"""Rare-event subsystem: importance functions, splitting, estimator.

Covers the acceptance criteria of the rare-event PR:

* structure-derived importance is monotone along failing trajectories
  of the (unmaintained) EI-joint and tops out at 1 exactly on failure;
* both splitting methods agree with the exact CTMC transient
  unreliability on a small Markovian tree (99% CI coverage);
* fixed effort agrees with crude Monte Carlo on the full EI-joint;
* crude-MC results are bit-identical with the subsystem configured but
  unused;
* serial and parallel rare-event runs are bit-identical.
"""

import numpy as np
import pytest

from repro.core.builder import FMTBuilder
from repro.ctmc.compiler import compile_fmt
from repro.eijoint.model import build_ei_joint_fmt
from repro.eijoint.parameters import default_parameters
from repro.eijoint.strategies import inspection_policy, unmaintained
from repro.errors import EstimationError, ValidationError
from repro.maintenance.strategy import MaintenanceStrategy
from repro.observability.instrumentation import (
    RARE_CLONES,
    RARE_LEVEL_UP,
    RARE_SEGMENTS,
    Instrumentation,
)
from repro.rareevent import (
    RareEventConfig,
    RareEventEstimator,
    StructureImportance,
    candidate_thresholds,
    crude_equivalent_runs,
    select_thresholds,
)
from repro.simulation.executor import FMTSimulator, SimulationConfig
from repro.simulation.montecarlo import MonteCarlo


def _absorbing() -> MaintenanceStrategy:
    return MaintenanceStrategy("absorbing", on_system_failure="none")


@pytest.fixture
def markovian_tree():
    """Small unmaintained multi-phase tree with an exact CTMC solution."""
    builder = FMTBuilder("markovian")
    builder.degraded_event("left", phases=3, mean=30.0)
    builder.degraded_event("right", phases=2, mean=20.0)
    builder.and_gate("top", ["left", "right"])
    return builder.build("top")


# ----------------------------------------------------------------------
# Importance function
# ----------------------------------------------------------------------
def test_importance_bounds_and_failure(markovian_tree):
    importance = StructureImportance(markovian_tree)
    assert importance({"left": 0, "right": 0}) == 0.0
    assert 0.0 < importance({"left": 1, "right": 0}) < 1.0
    # Both leaves failed -> the AND top fails -> importance exactly 1.
    assert importance({"left": 3, "right": 2}) == 1.0
    assert importance.max_value == 1.0


def test_importance_monotone_along_failing_trajectory():
    """Phases only climb without maintenance, so importance must too."""
    params = default_parameters()
    tree = build_ei_joint_fmt(params)
    importance = StructureImportance(tree)
    config = SimulationConfig(horizon=400.0)
    simulator = FMTSimulator(tree, unmaintained(), config=config)
    failing_seen = 0
    for seed in range(40):
        simulator.begin(np.random.default_rng(seed))
        last = importance.of(simulator)
        while simulator.step():
            value = importance.of(simulator)
            assert value >= last - 1e-12
            last = value
        if simulator.system_failed:
            failing_seen += 1
            assert importance.of(simulator) == 1.0
    assert failing_seen > 0  # 400 y without maintenance: most runs fail


def test_importance_weights_reshape_and_validate(markovian_tree):
    damped = StructureImportance(markovian_tree, {"left": 0.5})
    unit = StructureImportance(markovian_tree)
    state = {"left": 2, "right": 0}
    assert damped(state) < unit(state)
    # A failed event maps to 1.0 regardless of its weight.
    assert damped({"left": 3, "right": 2}) == 1.0
    with pytest.raises(ValidationError):
        StructureImportance(markovian_tree, {"nope": 1.0})
    with pytest.raises(ValidationError):
        StructureImportance(markovian_tree, {"left": 0.0})


def test_candidate_and_selected_thresholds(markovian_tree):
    candidates = candidate_thresholds(markovian_tree, None)
    assert all(0.0 < c < 1.0 for c in candidates)
    assert list(candidates) == sorted(set(candidates))
    chosen = select_thresholds(candidates, 2)
    assert len(chosen) == 2
    assert set(chosen) <= set(candidates)
    # The highest candidate is always kept: it is the last gate before
    # failure, and dropping it would make the final stage the rare one.
    assert chosen[-1] == candidates[-1]


# ----------------------------------------------------------------------
# Exactness on a Markovian tree
# ----------------------------------------------------------------------
@pytest.mark.parametrize("method", ["fixed_effort", "restart"])
def test_splitting_covers_ctmc_unreliability(markovian_tree, method):
    horizon = 8.0
    exact = compile_fmt(markovian_tree, _absorbing(), mode="unreliability")
    truth = exact.unreliability(horizon)
    assert 1e-5 < truth < 1e-2  # genuinely small, still testable
    config = RareEventConfig(
        method=method,
        n_levels=3,
        effort=400,
        n_replications=8,
        splits=4,
        n_roots=3000,
    )
    mc = MonteCarlo(markovian_tree, _absorbing(), horizon=horizon, seed=42)
    result = mc.run_rare_event(config, confidence=0.99)
    interval = result.unreliability
    assert interval.lower <= truth <= interval.upper
    # And the point estimate is in the right ballpark, not just covered
    # by a huge interval.
    assert truth / 5 < interval.estimate < truth * 5


def test_fixed_effort_agrees_with_crude_on_ei_joint():
    params = default_parameters()
    tree = build_ei_joint_fmt(params)
    strategy = inspection_policy(4.0, parameters=params)
    crude = MonteCarlo(tree, strategy, horizon=2.0, seed=3).run(
        4000, confidence=0.99
    )
    splitting = MonteCarlo(tree, strategy, horizon=2.0, seed=4).run_rare_event(
        RareEventConfig(
            method="fixed_effort", thresholds=(0.5, 2 / 3), effort=300,
            n_replications=6,
        ),
        confidence=0.99,
    )
    a, b = crude.unreliability, splitting.unreliability
    assert a.lower <= b.upper and b.lower <= a.upper


# ----------------------------------------------------------------------
# Reproducibility and integration
# ----------------------------------------------------------------------
def _trajectory_fingerprint(result):
    return [
        (t.failure_times, t.downtime, t.costs.total, t.n_inspections)
        for t in result.trajectories
    ]


def test_crude_mc_bit_identical_with_unused_subsystem():
    """Configuring rare_event must not perturb crude-MC streams."""
    params = default_parameters()
    tree = build_ei_joint_fmt(params)
    strategy = inspection_policy(4.0, parameters=params)
    plain = MonteCarlo(tree, strategy, horizon=15.0, seed=11).run(
        120, keep_trajectories=True
    )
    configured = MonteCarlo(
        tree,
        strategy,
        horizon=15.0,
        seed=11,
        rare_event=RareEventConfig(method="restart", n_roots=50),
    ).run(120, keep_trajectories=True)
    assert _trajectory_fingerprint(plain) == _trajectory_fingerprint(configured)


def test_rare_event_run_reproducible_and_seed_sensitive(markovian_tree):
    config = RareEventConfig(effort=100, n_replications=4, n_levels=2)
    first = MonteCarlo(
        markovian_tree, _absorbing(), horizon=8.0, seed=5
    ).run_rare_event(config)
    second = MonteCarlo(
        markovian_tree, _absorbing(), horizon=8.0, seed=5
    ).run_rare_event(config)
    other = MonteCarlo(
        markovian_tree, _absorbing(), horizon=8.0, seed=6
    ).run_rare_event(config)
    assert first.unreliability.estimate == second.unreliability.estimate
    assert first.n_trajectories == second.n_trajectories
    assert first.unreliability.estimate != other.unreliability.estimate


@pytest.mark.parametrize("method", ["fixed_effort", "restart"])
def test_rare_event_parallel_bit_identical(markovian_tree, method):
    config = RareEventConfig(
        method=method, effort=80, n_replications=4, n_roots=40, n_levels=2
    )
    serial = MonteCarlo(
        markovian_tree, _absorbing(), horizon=8.0, seed=9
    ).run_rare_event(config, processes=1)
    parallel = MonteCarlo(
        markovian_tree, _absorbing(), horizon=8.0, seed=9
    ).run_rare_event(config, processes=2)
    assert serial.unreliability.estimate == parallel.unreliability.estimate
    assert serial.unreliability.lower == parallel.unreliability.lower
    assert serial.n_trajectories == parallel.n_trajectories


def test_rare_event_after_crude_run_uses_distinct_streams(markovian_tree):
    mc = MonteCarlo(markovian_tree, _absorbing(), horizon=8.0, seed=5)
    mc.run(50)
    config = RareEventConfig(effort=100, n_replications=4, n_levels=2)
    after = mc.run_rare_event(config)
    fresh = MonteCarlo(
        markovian_tree, _absorbing(), horizon=8.0, seed=5
    ).run_rare_event(config)
    # Streams advance: a rare-event run after a crude run consumes
    # later child seeds, so it differs from a fresh driver's run.
    assert after.unreliability.estimate != fresh.unreliability.estimate


def test_instrumentation_counters_recorded(markovian_tree):
    instrumentation = Instrumentation()
    config = SimulationConfig(horizon=8.0, instrumentation=instrumentation)
    simulator = FMTSimulator(markovian_tree, _absorbing(), config=config)
    estimator = RareEventEstimator(
        simulator,
        RareEventConfig(effort=100, n_replications=2, n_levels=2),
    )
    seeds = np.random.SeedSequence(0).spawn(2)
    estimator.estimate(seeds)
    counters = instrumentation.registry.to_dict()["counters"]
    assert counters[RARE_SEGMENTS] > 0
    assert counters[RARE_LEVEL_UP] > 0
    assert counters[RARE_CLONES] > 0


# ----------------------------------------------------------------------
# Degenerate cases and validation
# ----------------------------------------------------------------------
def test_zero_hits_fall_back_to_wilson(markovian_tree):
    # A tiny effort on a rare event: no replication reaches failure.
    config = RareEventConfig(
        effort=2, n_replications=2, thresholds=(0.9,)
    )
    result = MonteCarlo(
        markovian_tree, _absorbing(), horizon=0.01, seed=1
    ).run_rare_event(config)
    interval = result.unreliability
    assert interval.estimate == 0.0
    assert interval.lower == 0.0
    assert interval.upper > 0.0  # Wilson zero-success upper bound


def test_single_phase_tree_rejected(simple_and_tree):
    simulator = FMTSimulator(simple_and_tree, _absorbing(), horizon=10.0)
    with pytest.raises(EstimationError):
        RareEventEstimator(simulator, RareEventConfig())


def test_estimator_rejects_wrong_seed_count(markovian_tree):
    simulator = FMTSimulator(
        markovian_tree, _absorbing(), config=SimulationConfig(horizon=8.0)
    )
    estimator = RareEventEstimator(
        simulator, RareEventConfig(n_replications=4, n_levels=2)
    )
    with pytest.raises(ValidationError):
        estimator.estimate(np.random.SeedSequence(0).spawn(3))


def test_config_validation():
    with pytest.raises(ValidationError):
        RareEventConfig(method="importance_sampling")
    with pytest.raises(ValidationError):
        RareEventConfig(effort=1)
    with pytest.raises(ValidationError):
        RareEventConfig(splits=1)
    with pytest.raises(ValidationError):
        RareEventConfig(n_roots=1)
    with pytest.raises(ValidationError):
        RareEventConfig(n_levels=0)


def test_threshold_validation(markovian_tree):
    simulator = FMTSimulator(
        markovian_tree, _absorbing(), config=SimulationConfig(horizon=8.0)
    )
    for bad in ((0.8, 0.5), (0.0, 0.5), (0.5, 1.0), ()):
        with pytest.raises(ValidationError):
            RareEventEstimator(
                simulator, RareEventConfig(thresholds=bad)
            ).estimate(np.random.SeedSequence(0).spawn(8))


def test_crude_equivalent_runs_inverts_wilson():
    from repro.stats.confidence import ConfidenceInterval

    interval = ConfidenceInterval(1e-4, 0.5e-4, 1.5e-4, 0.95)
    runs = crude_equivalent_runs(interval)
    assert runs is not None and runs > 100_000
    degenerate = ConfidenceInterval(0.0, 0.0, 1e-3, 0.95)
    assert crude_equivalent_runs(degenerate) is None
