"""Observability stack: metrics, instrumentation, tracing, logging.

The load-bearing guarantee tested here is the regression required by
the instrumentation layer's contract: attaching an
:class:`~repro.observability.Instrumentation` must never perturb the
simulation — instrumented and uninstrumented runs of the EI-joint
model under the same seed are bit-identical.
"""

import json
import logging
import pickle

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.maintenance.strategy import MaintenanceStrategy
from repro.observability import (
    Instrumentation,
    MetricsRegistry,
    current,
    percentile,
    use,
)
from repro.observability import instrumentation as obs
from repro.observability.logging_setup import get_logger, kv, parse_level
from repro.observability.metrics import Timer
from repro.observability.profiling import profile_call
from repro.observability.tracing import (
    TRACE_SCHEMA_VERSION,
    trace_records,
    write_trace_file,
)
from repro.simulation.engine import Engine
from repro.simulation.executor import FMTSimulator, SimulationConfig
from repro.simulation.montecarlo import MonteCarlo


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------
def test_counter_gauge_timer_basics():
    registry = MetricsRegistry()
    registry.counter("c").inc()
    registry.counter("c").inc(4)
    registry.gauge("g").set(2.5)
    registry.timer("t").observe(0.5)
    assert registry.counter("c").value == 5
    assert registry.gauge("g").value == 2.5
    assert registry.timer("t").count == 1
    assert registry.timer("t").total == 0.5


def test_metric_name_bound_to_one_kind():
    registry = MetricsRegistry()
    registry.counter("x")
    with pytest.raises(ValidationError):
        registry.timer("x")


def test_percentile_interpolates():
    samples = [1.0, 2.0, 3.0, 4.0]
    assert percentile(samples, 0) == 1.0
    assert percentile(samples, 100) == 4.0
    assert percentile(samples, 50) == 2.5
    with pytest.raises(ValidationError):
        percentile([], 50)
    with pytest.raises(ValidationError):
        percentile(samples, 101)


def test_timer_quantiles_and_context_manager():
    timer = Timer("t")
    for value in (0.1, 0.2, 0.3, 0.4, 0.5):
        timer.observe(value)
    assert timer.quantile(50.0) == pytest.approx(0.3)
    assert timer.max == pytest.approx(0.5)
    assert timer.mean == pytest.approx(0.3)
    with timer.time():
        pass
    assert timer.count == 6


def test_timer_sample_cap_keeps_count_and_total():
    timer = Timer("t", max_samples=3)
    for value in (1.0, 2.0, 3.0, 4.0):
        timer.observe(value)
    assert timer.count == 4
    assert timer.total == pytest.approx(10.0)
    assert timer.max == pytest.approx(4.0)  # exact even past the cap


def test_timer_reservoir_surfaces_late_run_outliers():
    # The pre-PR-6 first-N policy froze the sample window on the first
    # max_samples observations, so quantiles of a long run described
    # only its warm-up.  The reservoir keeps a uniform sample of
    # everything observed: a late regime change must show up.
    timer = Timer("late-outliers", max_samples=64)
    for _ in range(500):
        timer.observe(0.001)
    for _ in range(500):
        timer.observe(1.0)
    kept_late = sum(1 for sample in timer._samples if sample == 1.0)
    assert kept_late > 0, "late observations never entered the reservoir"
    # Half the stream is slow, so the reservoir should be roughly
    # half slow too (exact count is fixed by the name-seeded RNG).
    assert 16 <= kept_late <= 48
    assert timer.quantile(95.0) == pytest.approx(1.0)
    assert timer.max == pytest.approx(1.0)
    assert timer.count == 1000 and len(timer._samples) == 64


def test_timer_reservoir_is_deterministic_per_name():
    def fill(timer):
        for value in range(200):
            timer.observe(value / 1000.0)
        return timer

    first = fill(Timer("same-name", max_samples=16))
    second = fill(Timer("same-name", max_samples=16))
    assert first._samples == second._samples
    other = fill(Timer("other-name", max_samples=16))
    assert other._samples != first._samples  # different seed, same data


def test_gauge_tracks_last_min_max_envelope():
    registry = MetricsRegistry()
    gauge = registry.gauge("depth")
    for value in (5.0, 1.0, 3.0):
        gauge.set(value)
    assert gauge.value == 3.0
    assert gauge.summary() == {"last": 3.0, "min": 1.0, "max": 5.0}
    untouched = registry.gauge("idle")
    assert untouched.summary() == {"last": 0.0, "min": 0.0, "max": 0.0}
    snapshot = registry.to_dict()["gauges"]
    assert snapshot["depth"]["max"] == 5.0


def test_gauge_merge_keeps_envelope_not_last_writer():
    parent, worker_a, worker_b = (
        MetricsRegistry(), MetricsRegistry(), MetricsRegistry(),
    )
    parent.gauge("load").set(2.0)
    worker_a.gauge("load").set(7.0)
    worker_b.gauge("load").set(1.0)
    worker_b.gauge("untouched")  # created but never set: contributes nothing
    parent.merge(worker_a)
    parent.merge(worker_b)
    merged = parent.gauge("load")
    assert merged.last == 1.0  # chunk completion order: b merged last
    assert merged.min == 1.0 and merged.max == 7.0
    assert parent.gauge("untouched").n_sets == 0


def test_registry_merge_carries_exact_timer_max():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    worker_timer = worker.timer("t")
    worker_timer.max_samples = 2
    for value in (0.1, 0.2, 9.0, 0.3):
        worker_timer.observe(value)
    parent.merge(worker)
    merged = parent.timer("t")
    assert merged.count == 4
    assert merged.total == pytest.approx(9.6)
    assert merged.max == pytest.approx(9.0)  # survives reservoir eviction


def test_registry_to_dict_json_roundtrip(tmp_path):
    registry = MetricsRegistry()
    registry.counter("a").inc(3)
    registry.timer("b").observe(0.25)
    path = tmp_path / "metrics.json"
    registry.write_json(path)
    loaded = json.loads(path.read_text())
    assert loaded["counters"]["a"] == 3
    assert loaded["timers"]["b"]["count"] == 1
    assert loaded["timers"]["b"]["p95_seconds"] == pytest.approx(0.25)


def test_registry_render_text_lists_everything():
    registry = MetricsRegistry()
    registry.counter("hits").inc(2)
    registry.gauge("depth").set(7)
    registry.timer("lap").observe(1.0)
    text = registry.render_text(title="report")
    assert "== report ==" in text
    assert "hits" in text and "depth" in text and "lap" in text
    assert MetricsRegistry().render_text().endswith("(empty)")


def test_registry_merge_folds_workers():
    parent, worker = MetricsRegistry(), MetricsRegistry()
    parent.counter("n").inc(1)
    worker.counter("n").inc(2)
    worker.timer("t").observe(0.5)
    parent.merge(worker)
    assert parent.counter("n").value == 3
    assert parent.timer("t").count == 1


# ----------------------------------------------------------------------
# Instrumentation object + ambient context
# ----------------------------------------------------------------------
def test_ambient_instrumentation_scoping():
    assert current() is None
    instr = Instrumentation()
    with use(instr):
        assert current() is instr
        with use(None):  # passthrough, not an override
            assert current() is instr
    assert current() is None


def test_instrumentation_pickles():
    instr = Instrumentation()
    instr.count("sim.trajectories", 3)
    clone = pickle.loads(pickle.dumps(instr))
    assert clone.registry.counter("sim.trajectories").value == 3


def test_engine_reports_event_counters():
    instr = Instrumentation()
    engine = Engine(instrumentation=instr)
    handle = engine.schedule(1.0, lambda: None)
    engine.schedule(2.0, lambda: None)
    handle.cancel()
    engine.run_until(5.0)
    counters = instr.registry.to_dict()["counters"]
    assert counters[obs.EVENTS_SCHEDULED] == 2
    assert counters[obs.EVENTS_CANCELLED] == 1
    assert counters[obs.EVENTS_EXECUTED] == 1


def test_simulator_counts_activity(maintained_tree, inspection_strategy, rng):
    instr = Instrumentation()
    config = SimulationConfig(horizon=40.0, instrumentation=instr)
    simulator = FMTSimulator(maintained_tree, inspection_strategy, config=config)
    simulator.simulate(rng)
    counters = instr.registry.to_dict()["counters"]
    assert counters[obs.SIM_TRAJECTORIES] == 1
    assert counters[obs.SIM_PHASE_JUMPS] > 0
    assert counters[obs.SIM_INSPECTIONS] > 0
    assert counters[obs.EVENTS_EXECUTED] > 0
    timers = instr.registry.to_dict()["timers"]
    assert timers[obs.TIMER_SIMULATE]["count"] == 1


# ----------------------------------------------------------------------
# The bit-identity regression (the tentpole's acceptance criterion)
# ----------------------------------------------------------------------
def _ei_joint_mc(instrumentation):
    from repro.eijoint.model import build_ei_joint_fmt
    from repro.eijoint.strategies import current_policy

    return MonteCarlo(
        build_ei_joint_fmt(),
        current_policy(),
        horizon=15.0,
        seed=2016,
        record_events=True,
        instrumentation=instrumentation,
    )


def _ei_joint_trajectories(instrumentation):
    return _ei_joint_mc(instrumentation).sample(25)


def _assert_trajectories_identical(plain, instrumented):
    for a, b in zip(plain, instrumented):
        assert a.failure_times == b.failure_times
        assert a.downtime == b.downtime
        assert a.costs.total == b.costs.total
        assert a.n_inspections == b.n_inspections
        assert a.n_preventive_actions == b.n_preventive_actions
        assert a.n_corrective_replacements == b.n_corrective_replacements
        assert [
            (e.time, e.component, e.kind, e.corrective, e.phase) for e in a.events
        ] == [
            (e.time, e.component, e.kind, e.corrective, e.phase) for e in b.events
        ]


def test_instrumented_ei_joint_run_is_bit_identical():
    plain = _ei_joint_trajectories(None)
    instr = Instrumentation()
    instrumented = _ei_joint_trajectories(instr)
    assert instr.registry.counter(obs.SIM_TRAJECTORIES).value == 25
    _assert_trajectories_identical(plain, instrumented)


def test_full_telemetry_ei_joint_run_is_bit_identical():
    """Metrics + spans + progress attached at once must stay passive."""
    import io

    from repro.observability import JsonlProgressReporter, SpanCollector
    from repro.observability import spans as sp
    from repro.observability.progress import use_progress

    plain = _ei_joint_trajectories(None)
    instr = Instrumentation()
    collector = SpanCollector()
    reporter = JsonlProgressReporter(stream=io.StringIO())
    with sp.use(collector), use_progress(reporter):
        watched = _ei_joint_mc(instr).run(25, keep_trajectories=True)
    _assert_trajectories_identical(plain, watched.trajectories)
    assert instr.registry.counter(obs.SIM_TRAJECTORIES).value == 25
    assert [r["name"] for r in collector.records] == ["mc.run"]
    assert reporter.events_seen > 0


def test_ambient_instrumentation_is_bit_identical(maintained_tree, inspection_strategy):
    plain = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=3
    ).run(30)
    instr = Instrumentation()
    with use(instr):
        ambient = MonteCarlo(
            maintained_tree, inspection_strategy, horizon=20.0, seed=3
        ).run(30)
    assert (
        plain.summary.expected_failures.estimate
        == ambient.summary.expected_failures.estimate
    )
    assert plain.summary.cost_per_year.estimate == ambient.summary.cost_per_year.estimate
    assert instr.registry.counter(obs.SIM_TRAJECTORIES).value == 30
    assert instr.registry.timer(obs.TIMER_SUMMARIZE).count == 1


# ----------------------------------------------------------------------
# Trace export
# ----------------------------------------------------------------------
def test_trace_records_schema(maintained_tree, inspection_strategy):
    mc = MonteCarlo(
        maintained_tree,
        inspection_strategy,
        horizon=30.0,
        seed=5,
        record_events=True,
    )
    trajectories = mc.sample(4)
    records = list(trace_records(trajectories))
    header = records[0]
    assert header["record"] == "header"
    assert header["schema_version"] == TRACE_SCHEMA_VERSION
    assert header["n_trajectories"] == 4
    kinds = [r["record"] for r in records]
    assert kinds.count("trajectory") == 4
    events = [r for r in records if r["record"] == "event"]
    total_events = sum(len(t.events) for t in trajectories)
    assert len(events) == total_events
    for event in events:
        assert set(event) == {
            "record", "trajectory", "time", "component", "kind",
            "corrective", "phase",
        }


def test_write_trace_file_is_valid_jsonl(tmp_path, maintained_tree, inspection_strategy):
    mc = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=6,
        record_events=True,
    )
    path = tmp_path / "trace.jsonl"
    count = write_trace_file(mc.sample(3), path)
    lines = path.read_text().splitlines()
    assert len(lines) == count
    parsed = [json.loads(line) for line in lines]
    assert parsed[0]["record"] == "header"


# ----------------------------------------------------------------------
# Logging setup
# ----------------------------------------------------------------------
def test_get_logger_namespacing():
    assert get_logger("simulation.engine").name == "repro.simulation.engine"
    assert get_logger("repro.cli").name == "repro.cli"
    assert get_logger("repro").name == "repro"


def test_parse_level():
    assert parse_level("DEBUG") == logging.DEBUG
    assert parse_level("info") == logging.INFO
    assert parse_level(logging.ERROR) == logging.ERROR
    assert parse_level(None) is None
    with pytest.raises(ValueError):
        parse_level("loud")


def test_kv_formatting():
    assert kv("done", runs=3, rate=0.25) == "done runs=3 rate=0.25"
    assert kv("bare") == "bare"


# ----------------------------------------------------------------------
# Profiling
# ----------------------------------------------------------------------
def test_profile_call_returns_result_and_stats():
    result, text = profile_call(sum, [1, 2, 3])
    assert result == 6
    assert "function calls" in text
