"""Gate semantics: static evaluation, arity checks, PAND ordering."""

import pytest

from repro.core.events import BasicEvent
from repro.core.gates import (
    AndGate,
    InhibitGate,
    OrGate,
    PandGate,
    VotingGate,
)
from repro.errors import ValidationError


def _leaves(n):
    return [BasicEvent.exponential(f"x{i}", rate=1.0) for i in range(n)]


def test_and_gate_truth_table():
    gate = AndGate("g", _leaves(2))
    assert gate.evaluate([True, True])
    assert not gate.evaluate([True, False])
    assert not gate.evaluate([False, False])


def test_or_gate_truth_table():
    gate = OrGate("g", _leaves(2))
    assert gate.evaluate([True, False])
    assert gate.evaluate([True, True])
    assert not gate.evaluate([False, False])


def test_voting_gate_threshold():
    gate = VotingGate("g", 2, _leaves(3))
    assert not gate.evaluate([True, False, False])
    assert gate.evaluate([True, True, False])
    assert gate.evaluate([True, True, True])


def test_voting_k1_is_or():
    gate = VotingGate("g", 1, _leaves(3))
    assert gate.evaluate([False, False, True])


def test_voting_kn_is_and():
    gate = VotingGate("g", 3, _leaves(3))
    assert not gate.evaluate([True, True, False])
    assert gate.evaluate([True, True, True])


def test_voting_k_out_of_range():
    with pytest.raises(ValidationError):
        VotingGate("g", 0, _leaves(3))
    with pytest.raises(ValidationError):
        VotingGate("g", 4, _leaves(3))


def test_voting_needs_two_children():
    with pytest.raises(ValidationError):
        VotingGate("g", 1, _leaves(1))


def test_inhibit_condition_property():
    leaves = _leaves(3)
    gate = InhibitGate("g", leaves)
    assert gate.condition is leaves[0]
    assert gate.evaluate([True, True, True])
    assert not gate.evaluate([False, True, True])


def test_pand_static_evaluation_is_and():
    gate = PandGate("g", _leaves(2))
    assert gate.evaluate([True, True])
    assert not gate.evaluate([True, False])


def test_pand_ordered_in_order():
    gate = PandGate("g", _leaves(3))
    assert gate.evaluate_ordered([1.0, 2.0, 3.0])


def test_pand_ordered_simultaneous_counts():
    gate = PandGate("g", _leaves(2))
    assert gate.evaluate_ordered([2.0, 2.0])


def test_pand_ordered_out_of_order():
    gate = PandGate("g", _leaves(2))
    assert not gate.evaluate_ordered([3.0, 1.0])


def test_pand_ordered_with_operational_child():
    gate = PandGate("g", _leaves(2))
    assert not gate.evaluate_ordered([1.0, None])


def test_pand_is_dynamic():
    assert PandGate("g", _leaves(2)).dynamic
    assert not AndGate("g2", _leaves(2)).dynamic


def test_arity_mismatch_raises():
    gate = AndGate("g", _leaves(2))
    with pytest.raises(ValidationError):
        gate.evaluate([True])
    or_gate = OrGate("g2", _leaves(2))
    with pytest.raises(ValidationError):
        or_gate.evaluate([True, False, True])


def test_duplicate_children_rejected():
    leaf = BasicEvent.exponential("x", rate=1.0)
    with pytest.raises(ValidationError):
        OrGate("g", [leaf, leaf])


def test_gate_requires_children():
    with pytest.raises(ValidationError):
        OrGate("g", [])


def test_non_element_child_rejected():
    with pytest.raises(ValidationError):
        OrGate("g", ["not-an-element"])


def test_to_dict_contains_children_names():
    gate = VotingGate("g", 2, _leaves(3))
    data = gate.to_dict()
    assert data["type"] == "vot"
    assert data["k"] == 2
    assert data["children"] == ["x0", "x1", "x2"]


def test_repr_mentions_children():
    gate = AndGate("g", _leaves(2))
    assert "x0" in repr(gate)
