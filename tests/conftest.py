"""Shared fixtures: small models reused across the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.builder import FMTBuilder
from repro.maintenance.actions import clean
from repro.maintenance.modules import InspectionModule
from repro.maintenance.strategy import MaintenanceStrategy


@pytest.fixture
def rng():
    """A deterministic RNG for sampling tests."""
    return np.random.default_rng(12345)


@pytest.fixture
def simple_or_tree():
    """top = a OR b, exponential leaves."""
    builder = FMTBuilder("simple_or")
    builder.basic_event("a", rate=0.5)
    builder.basic_event("b", rate=0.25)
    builder.or_gate("top", ["a", "b"])
    return builder.build("top")


@pytest.fixture
def simple_and_tree():
    """top = a AND b, exponential leaves."""
    builder = FMTBuilder("simple_and")
    builder.basic_event("a", rate=0.5)
    builder.basic_event("b", rate=0.25)
    builder.and_gate("top", ["a", "b"])
    return builder.build("top")


@pytest.fixture
def voting_tree():
    """top = 2-of-3 over exponential leaves."""
    builder = FMTBuilder("vote23")
    for name in ("a", "b", "c"):
        builder.basic_event(name, rate=0.2)
    builder.voting_gate("top", 2, ["a", "b", "c"])
    return builder.build("top")


@pytest.fixture
def layered_tree():
    """Two-level tree with a shared subtree and mixed gates."""
    builder = FMTBuilder("layered")
    builder.basic_event("a", rate=0.1)
    builder.basic_event("b", rate=0.2)
    builder.basic_event("c", rate=0.3)
    builder.degraded_event("d", phases=3, mean=5.0, threshold=2)
    builder.and_gate("ab", ["a", "b"])
    builder.voting_gate("bcd", 2, ["b", "c", "d"])
    builder.or_gate("top", ["ab", "bcd"])
    return builder.build("top")


@pytest.fixture
def maintained_tree():
    """Degrading component + inspection module + RDEP, for FMT tests."""
    builder = FMTBuilder("maintained")
    builder.degraded_event("wear", phases=4, mean=8.0, threshold=2)
    builder.basic_event("shock", rate=0.05)
    builder.or_gate("top", ["wear", "shock"])
    builder.rdep("accel", trigger="shock", targets=["wear"], factor=5.0)
    return builder.build("top")


@pytest.fixture
def inspection_strategy():
    """Quarterly cleaning of the 'wear' component."""
    module = InspectionModule(
        "insp", period=0.25, targets=["wear"], action=clean()
    )
    return MaintenanceStrategy(
        "inspect", inspections=(module,), on_system_failure="replace"
    )
