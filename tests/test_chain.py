"""CTMC representation and builder."""

import numpy as np
import pytest

from repro.ctmc.chain import CTMC, CTMCBuilder
from repro.errors import AnalysisError, ValidationError


def _two_state():
    builder = CTMCBuilder()
    builder.add_transition("up", "down", 2.0)
    builder.add_transition("down", "up", 3.0)
    return builder.build(initial="up")


def test_builder_registers_states_from_transitions():
    chain = _two_state()
    assert chain.n_states == 2
    assert set(chain.labels) == {"up", "down"}


def test_generator_rows_sum_to_zero():
    chain = _two_state()
    rows = np.asarray(chain.generator.sum(axis=1)).ravel()
    assert np.allclose(rows, 0.0)


def test_parallel_transitions_accumulate():
    builder = CTMCBuilder()
    builder.add_transition("a", "b", 1.0)
    builder.add_transition("a", "b", 2.0)
    chain = builder.build()
    i, j = chain.index_of("a"), chain.index_of("b")
    assert chain.generator[i, j] == pytest.approx(3.0)


def test_self_loop_rejected():
    builder = CTMCBuilder()
    with pytest.raises(ValidationError):
        builder.add_transition("a", "a", 1.0)


def test_nonpositive_rate_rejected():
    builder = CTMCBuilder()
    with pytest.raises(ValidationError):
        builder.add_transition("a", "b", 0.0)
    with pytest.raises(ValidationError):
        builder.add_transition("a", "b", -1.0)


def test_empty_build_rejected():
    with pytest.raises(ValidationError):
        CTMCBuilder().build()


def test_unknown_initial_rejected():
    builder = CTMCBuilder()
    builder.add_state("a")
    with pytest.raises(ValidationError):
        builder.build(initial="zz")


def test_default_initial_is_first_state():
    builder = CTMCBuilder()
    builder.add_transition("first", "second", 1.0)
    chain = builder.build()
    assert chain.initial[chain.index_of("first")] == 1.0


def test_exit_rates():
    chain = _two_state()
    rates = chain.exit_rates()
    assert rates[chain.index_of("up")] == pytest.approx(2.0)
    assert rates[chain.index_of("down")] == pytest.approx(3.0)


def test_uniformization_rate_covers_max_exit():
    chain = _two_state()
    assert chain.uniformization_rate() >= 3.0


def test_absorbing_states():
    builder = CTMCBuilder()
    builder.add_transition("a", "b", 1.0)
    chain = builder.build()
    assert chain.absorbing_states() == [chain.index_of("b")]


def test_index_of_unknown_raises():
    with pytest.raises(AnalysisError):
        _two_state().index_of("ghost")


def test_ctmc_rejects_bad_initial_distribution():
    chain = _two_state()
    with pytest.raises(ValidationError):
        CTMC(chain.labels, chain.generator, np.array([0.5, 0.4]))


def test_repr():
    assert "n_states=2" in repr(_two_state())
