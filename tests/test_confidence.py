"""Confidence intervals: coverage sanity, edge cases, invariants."""

import math

import numpy as np
import pytest

from repro.stats.confidence import (
    ConfidenceInterval,
    mean_confidence_interval,
    proportion_confidence_interval,
    wilson_interval,
)


def test_interval_contains():
    interval = ConfidenceInterval(0.5, 0.4, 0.6, 0.95)
    assert interval.contains(0.45)
    assert not interval.contains(0.39)


def test_interval_half_width():
    interval = ConfidenceInterval(0.5, 0.4, 0.6, 0.95)
    assert interval.half_width == pytest.approx(0.1)


def test_interval_relative_half_width():
    interval = ConfidenceInterval(2.0, 1.0, 3.0, 0.95)
    assert interval.relative_half_width == pytest.approx(0.5)


def test_interval_relative_half_width_zero_estimate():
    interval = ConfidenceInterval(0.0, -1.0, 1.0, 0.95)
    assert interval.relative_half_width == math.inf


def test_interval_rejects_inverted_bounds():
    with pytest.raises(ValueError):
        ConfidenceInterval(0.5, 0.6, 0.4, 0.95)


def test_interval_rejects_bad_confidence():
    with pytest.raises(ValueError):
        ConfidenceInterval(0.5, 0.4, 0.6, 1.5)


def test_interval_str_mentions_confidence():
    assert "@95%" in str(ConfidenceInterval(0.5, 0.4, 0.6, 0.95))


def test_interval_str_renders_non_finite_bounds_as_na():
    """Regression: degenerate (n <= 1) intervals keep their infinite
    bounds for the stopping rules, but reports must say "n/a", not
    leak "-inf"/"inf" into tables and exports."""
    degenerate = mean_confidence_interval([3.0])
    text = str(degenerate)
    assert "inf" not in text
    assert text == "3 [n/a, n/a] @95%"
    # Finite intervals are unaffected.
    assert str(ConfidenceInterval(0.5, 0.4, 0.6, 0.95)) == "0.5 [0.4, 0.6] @95%"


def test_format_ci_renders_infinite_half_width_as_na():
    from repro.experiments.common import format_ci

    degenerate = mean_confidence_interval([3.0])
    assert format_ci(degenerate) == "3 ±n/a"
    assert format_ci(ConfidenceInterval(0.5, 0.4, 0.6, 0.95)) == "0.5 ±0.1"


def test_summarize_single_run_has_no_inf_in_rendering():
    """One replication end to end: the KPI table text stays inf-free."""
    from repro.core.builder import FMTBuilder
    from repro.maintenance.strategy import MaintenanceStrategy
    from repro.simulation.montecarlo import MonteCarlo

    builder = FMTBuilder("single")
    builder.degraded_event("w", phases=2, mean=2.0, threshold=1)
    builder.or_gate("top", ["w"])
    tree = builder.build("top")
    summary = MonteCarlo(
        tree, MaintenanceStrategy.none(), horizon=10.0, seed=0
    ).run(1).summary
    assert summary.failures_per_year.lower == -math.inf  # kept for stopping
    for name in ("failures_per_year", "cost_per_year", "expected_failures"):
        assert "inf" not in str(getattr(summary, name))


def test_mean_ci_centers_on_mean():
    interval = mean_confidence_interval([1.0, 2.0, 3.0, 4.0])
    assert interval.estimate == pytest.approx(2.5)
    assert interval.lower < 2.5 < interval.upper


def test_mean_ci_empty():
    interval = mean_confidence_interval([])
    assert interval.lower == -math.inf and interval.upper == math.inf


def test_mean_ci_single_sample_is_unbounded():
    interval = mean_confidence_interval([3.0])
    assert interval.estimate == 3.0
    assert interval.lower == -math.inf


def test_mean_ci_constant_samples_zero_width():
    interval = mean_confidence_interval([2.0] * 10)
    assert interval.half_width == pytest.approx(0.0)


def test_mean_ci_width_shrinks_with_n(rng):
    small = mean_confidence_interval(list(rng.normal(size=50)))
    large = mean_confidence_interval(list(rng.normal(size=5000)))
    assert large.half_width < small.half_width


def test_mean_ci_coverage_on_normal(rng):
    hits = 0
    trials = 300
    for _ in range(trials):
        samples = rng.normal(loc=1.0, size=30)
        if mean_confidence_interval(list(samples), 0.95).contains(1.0):
            hits += 1
    assert hits / trials > 0.88


def test_wilson_point_estimate():
    interval = wilson_interval(30, 100)
    assert interval.estimate == pytest.approx(0.3)


def test_wilson_bounds_stay_in_unit_interval():
    for successes, trials in [(0, 10), (10, 10), (1, 1000), (999, 1000)]:
        interval = wilson_interval(successes, trials)
        assert 0.0 <= interval.lower <= interval.upper <= 1.0


def test_wilson_zero_successes_has_positive_upper():
    interval = wilson_interval(0, 50)
    assert interval.lower == pytest.approx(0.0, abs=1e-12)
    assert interval.upper > 0.0


def test_wilson_zero_trials_degenerates():
    interval = wilson_interval(0, 0)
    assert interval.lower == 0.0 and interval.upper == 1.0


def test_wilson_rejects_bad_counts():
    with pytest.raises(ValueError):
        wilson_interval(5, 3)
    with pytest.raises(ValueError):
        wilson_interval(-1, 3)


def test_wilson_coverage_on_binomial(rng):
    p = 0.07
    hits = 0
    trials = 300
    for _ in range(trials):
        successes = rng.binomial(200, p)
        if wilson_interval(int(successes), 200, 0.95).contains(p):
            hits += 1
    assert hits / trials > 0.88


def test_proportion_ci_is_wilson():
    assert proportion_confidence_interval(3, 10) == wilson_interval(3, 10)
