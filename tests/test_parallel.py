"""Parallel Monte Carlo: correctness and serial equivalence."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.executor import FMTSimulator
from repro.simulation.montecarlo import MonteCarlo
from repro.simulation.parallel import sample_parallel, simulate_batch


def test_simulate_batch_matches_individual(maintained_tree):
    simulator = FMTSimulator(
        maintained_tree, MaintenanceStrategy.none(), horizon=20.0
    )
    seeds = np.random.SeedSequence(5).spawn(10)
    batch = simulate_batch(simulator, seeds)
    individually = [
        simulator.simulate(np.random.default_rng(seed)) for seed in seeds
    ]
    assert [t.n_failures for t in batch] == [
        t.n_failures for t in individually
    ]


def test_sample_parallel_single_process_equals_batch(maintained_tree):
    simulator = FMTSimulator(
        maintained_tree, MaintenanceStrategy.none(), horizon=20.0
    )
    seeds = np.random.SeedSequence(6).spawn(20)
    serial = simulate_batch(simulator, seeds)
    parallel = sample_parallel(simulator, seeds, processes=1)
    assert [t.failure_times for t in serial] == [
        t.failure_times for t in parallel
    ]


def test_sample_parallel_two_processes_preserves_order(maintained_tree):
    simulator = FMTSimulator(
        maintained_tree, MaintenanceStrategy.none(), horizon=20.0
    )
    seeds = np.random.SeedSequence(7).spawn(30)
    serial = simulate_batch(simulator, seeds)
    parallel = sample_parallel(simulator, seeds, processes=2, chunk_size=7)
    assert [t.failure_times for t in serial] == [
        t.failure_times for t in parallel
    ]


def test_run_parallel_matches_run(maintained_tree, inspection_strategy):
    serial = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=11
    ).run(40)
    parallel = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=11
    ).run_parallel(40, processes=2)
    assert (
        serial.summary.expected_failures.estimate
        == parallel.summary.expected_failures.estimate
    )
    assert serial.unreliability.estimate == parallel.unreliability.estimate


def test_run_parallel_validation(maintained_tree):
    mc = MonteCarlo(maintained_tree, None, horizon=5.0)
    with pytest.raises(ValidationError):
        mc.run_parallel(0)
    simulator = FMTSimulator(
        maintained_tree, MaintenanceStrategy.none(), horizon=5.0
    )
    with pytest.raises(ValidationError):
        sample_parallel(simulator, [], processes=0)
