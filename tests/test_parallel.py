"""Parallel Monte Carlo: correctness and serial equivalence."""

import os
import pickle

import numpy as np
import pytest

from repro.errors import SimulationError, ValidationError
from repro.maintenance.strategy import MaintenanceStrategy
from repro.simulation.executor import FMTSimulator
from repro.simulation.montecarlo import MonteCarlo
from repro.simulation.parallel import (
    MAX_DEFAULT_PROCESSES,
    default_process_count,
    sample_parallel,
    sample_parallel_batch,
    simulate_batch,
    simulate_batch_columns,
)


def test_simulate_batch_matches_individual(maintained_tree):
    simulator = FMTSimulator(
        maintained_tree, MaintenanceStrategy.none(), horizon=20.0
    )
    seeds = np.random.SeedSequence(5).spawn(10)
    batch = simulate_batch(simulator, seeds)
    individually = [
        simulator.simulate(np.random.default_rng(seed)) for seed in seeds
    ]
    assert [t.n_failures for t in batch] == [
        t.n_failures for t in individually
    ]


def test_sample_parallel_single_process_equals_batch(maintained_tree):
    simulator = FMTSimulator(
        maintained_tree, MaintenanceStrategy.none(), horizon=20.0
    )
    seeds = np.random.SeedSequence(6).spawn(20)
    serial = simulate_batch(simulator, seeds)
    parallel = sample_parallel(simulator, seeds, processes=1)
    assert [t.failure_times for t in serial] == [
        t.failure_times for t in parallel
    ]


def test_sample_parallel_two_processes_preserves_order(maintained_tree):
    simulator = FMTSimulator(
        maintained_tree, MaintenanceStrategy.none(), horizon=20.0
    )
    seeds = np.random.SeedSequence(7).spawn(30)
    serial = simulate_batch(simulator, seeds)
    parallel = sample_parallel(simulator, seeds, processes=2, chunk_size=7)
    assert [t.failure_times for t in serial] == [
        t.failure_times for t in parallel
    ]


def test_run_parallel_matches_run(maintained_tree, inspection_strategy):
    serial = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=11
    ).run(40)
    parallel = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=11
    ).run_parallel(40, processes=2)
    assert (
        serial.summary.expected_failures.estimate
        == parallel.summary.expected_failures.estimate
    )
    assert serial.unreliability.estimate == parallel.unreliability.estimate


def test_run_parallel_validation(maintained_tree):
    mc = MonteCarlo(maintained_tree, None, horizon=5.0)
    with pytest.raises(ValidationError):
        mc.run_parallel(0)
    with pytest.raises(ValidationError):
        mc.run_parallel(4, processes=0)
    simulator = FMTSimulator(
        maintained_tree, MaintenanceStrategy.none(), horizon=5.0
    )
    with pytest.raises(ValidationError):
        sample_parallel(simulator, [], processes=0)
    with pytest.raises(ValidationError):
        sample_parallel(simulator, [], processes=2, chunk_size=0)


@pytest.mark.parametrize("processes", [1, 2, 4])
def test_bit_identity_across_process_counts(
    maintained_tree, inspection_strategy, processes
):
    """Serial and parallel sampling agree bit-for-bit at any fan-out."""
    simulator = FMTSimulator(
        maintained_tree, inspection_strategy, horizon=25.0
    )
    seeds = np.random.SeedSequence(42).spawn(24)
    serial = simulate_batch(simulator, seeds)
    parallel = sample_parallel(simulator, seeds, processes=processes)
    assert [t.failure_times for t in serial] == [
        t.failure_times for t in parallel
    ]
    assert [t.downtime for t in serial] == [t.downtime for t in parallel]
    assert [t.costs.total for t in serial] == [
        t.costs.total for t in parallel
    ]
    assert [t.n_preventive_actions for t in serial] == [
        t.n_preventive_actions for t in parallel
    ]


def test_simulator_pickle_roundtrip(maintained_tree, inspection_strategy):
    """Workers receive the simulator by pickling; the copy must behave
    identically to the original under the same seed."""
    simulator = FMTSimulator(
        maintained_tree, inspection_strategy, horizon=20.0
    )
    clone = pickle.loads(pickle.dumps(simulator))
    seed = np.random.SeedSequence(9)
    original = simulator.simulate(np.random.default_rng(seed))
    copied = clone.simulate(np.random.default_rng(seed))
    assert original.failure_times == copied.failure_times
    assert original.costs.total == copied.costs.total
    assert original.n_inspections == copied.n_inspections


def test_default_process_count_bounds():
    assert 1 <= default_process_count() <= MAX_DEFAULT_PROCESSES
    assert default_process_count(1) == 1
    assert default_process_count(0) == 1  # degenerate task count stays valid


def test_default_process_count_respects_affinity_mask(monkeypatch):
    """A cgroup/affinity restriction wins over the raw machine count.

    Regression: ``default_process_count`` used ``os.cpu_count()``
    directly, oversubscribing containers pinned to a few cores.
    """
    from repro.simulation import parallel

    monkeypatch.setattr(os, "cpu_count", lambda: 64)
    monkeypatch.setattr(
        os, "sched_getaffinity", lambda pid: {0, 1, 2}, raising=False
    )
    assert parallel._available_cpu_count() == 3
    assert default_process_count() == 3
    assert default_process_count(2) == 2


def test_default_process_count_without_affinity_support(monkeypatch):
    """Platforms lacking sched_getaffinity fall back to cpu_count."""
    monkeypatch.setattr(os, "cpu_count", lambda: 6)
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    from repro.simulation import parallel

    assert parallel._available_cpu_count() == 6
    assert default_process_count() == 6
    # And a None cpu_count still yields a valid fan-out.
    monkeypatch.setattr(os, "cpu_count", lambda: None)
    assert parallel._available_cpu_count() == 1
    assert default_process_count() == 1


def test_run_parallel_default_processes(maintained_tree, inspection_strategy):
    serial = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=10.0, seed=21
    ).run(12)
    parallel = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=10.0, seed=21
    ).run_parallel(12, processes=None)
    assert (
        serial.summary.expected_failures.estimate
        == parallel.summary.expected_failures.estimate
    )


def _columns_equal(batch, other):
    assert batch.horizon == other.horizon
    np.testing.assert_array_equal(batch.failure_times, other.failure_times)
    np.testing.assert_array_equal(batch.failure_offsets, other.failure_offsets)
    np.testing.assert_array_equal(batch.downtime, other.downtime)
    for field, column in batch.costs.items():
        np.testing.assert_array_equal(column, other.costs[field])
    np.testing.assert_array_equal(batch.n_inspections, other.n_inspections)


def test_simulate_batch_columns_matches_objects(maintained_tree):
    from repro.simulation.batch import TrajectoryBatch

    simulator = FMTSimulator(
        maintained_tree, MaintenanceStrategy.none(), horizon=20.0
    )
    seeds = np.random.SeedSequence(13).spawn(15)
    columns = simulate_batch_columns(simulator, seeds)
    objects = TrajectoryBatch.from_trajectories(simulate_batch(simulator, seeds))
    _columns_equal(columns, objects)


@pytest.mark.parametrize("processes", [1, 2, 3])
def test_sample_parallel_batch_bit_identical(
    maintained_tree, inspection_strategy, processes
):
    """Columnar worker IPC returns exactly the object path's columns."""
    from repro.simulation.batch import TrajectoryBatch

    simulator = FMTSimulator(
        maintained_tree, inspection_strategy, horizon=25.0
    )
    seeds = np.random.SeedSequence(42).spawn(24)
    reference = TrajectoryBatch.from_trajectories(
        sample_parallel(simulator, seeds, processes=processes)
    )
    batch = sample_parallel_batch(
        simulator, seeds, processes=processes, chunk_size=5
    )
    _columns_equal(batch, reference)


def test_run_parallel_streams_batch(maintained_tree, inspection_strategy):
    result = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=11
    ).run_parallel(30, processes=2)
    assert result.trajectories is None
    assert result.batch is not None
    assert result.batch.n_runs == 30
    serial = MonteCarlo(
        maintained_tree, inspection_strategy, horizon=20.0, seed=11
    ).run(30)
    assert (
        serial.summary.cost_per_year.estimate
        == result.summary.cost_per_year.estimate
    )
    assert (
        serial.summary.availability.upper == result.summary.availability.upper
    )


class _CrashingSimulator:
    """Stand-in whose worker dies abruptly (not a Python exception)."""

    def simulate(self, rng):
        os._exit(17)


def test_worker_crash_raises_simulation_error():
    seeds = np.random.SeedSequence(0).spawn(8)
    with pytest.raises(SimulationError, match="worker process"):
        sample_parallel(_CrashingSimulator(), seeds, processes=2, chunk_size=2)
