"""Setuptools shim.

`pip install -e .` uses pyproject.toml; this file exists for
environments without the `wheel` package, where PEP 660 editable
installs fail and `python setup.py develop` is the fallback.
"""

from setuptools import setup

setup()
